#ifndef OPERB_SERVER_CLIENT_H_
#define OPERB_SERVER_CLIENT_H_

/// \file
/// Blocking client of the operb trajectory daemon: one TCP connection,
/// one request/response frame pair per call (server/protocol.h). Every
/// method maps the wire status back onto the library's Status classes,
/// so callers keep the exact error contract (and CLI exit codes) of the
/// offline query path.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geo/bbox.h"
#include "geo/point.h"
#include "server/protocol.h"
#include "server/socket.h"
#include "traj/multi_object.h"

namespace operb::server {

/// What one TryIngest attempt came back with.
struct IngestAck {
  bool accepted = false;       ///< false: BUSY, nothing was ingested
  std::uint64_t points = 0;    ///< points accepted (= batch size)
  std::uint32_t retry_after_ms = 0;  ///< BUSY hint; 0 when accepted
};

/// A connected daemon client. Not thread-safe (one request in flight at
/// a time — callers wanting concurrency open more connections, which is
/// also how the hammer test and the bench drive the server).
class Client {
 public:
  static Result<Client> Connect(const std::string& host, std::uint16_t port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// One ingest attempt; a BUSY response is returned as an
  /// unaccepted ack, not an error.
  Result<IngestAck> TryIngest(std::span<const traj::ObjectUpdate> updates);

  /// TryIngest with bounded blocking retry: sleeps the server's
  /// retry-after hint between attempts, up to `max_attempts`. Errors on
  /// a still-BUSY final attempt (the caller's flow control gave up).
  Status Ingest(std::span<const traj::ObjectUpdate> updates,
                int max_attempts = 200);

  Status FinishObject(traj::ObjectId id);

  Result<std::vector<traj::TimedSegment>> QueryObject(traj::ObjectId id,
                                                      double t_min,
                                                      double t_max);
  Result<std::vector<traj::TimedSegment>> QueryWindow(
      const geo::BoundingBox& window, double t_min, double t_max,
      bool flat_scan = false);
  Result<geo::Point> PositionAt(traj::ObjectId id, double t);

  Result<StatsBody> Stats();

  /// Server-side artifact writes (paths are the server's filesystem).
  Status Checkpoint(const std::string& path);
  Status MetricsSnapshot(const std::string& path);

  /// Forces a seal; returns the sealed-segment total.
  Result<std::uint64_t> Seal();

  /// Asks the daemon to stop; the connection is closed afterwards.
  Status Shutdown();

 private:
  explicit Client(Socket sock) : sock_(std::move(sock)) {}

  /// Sends `verb` + `body`, receives one reply. kOk: reply body in
  /// `*reply`. kBusy: Unavailable-like — surfaced only through
  /// TryIngest; everywhere else it becomes an error Status.
  Status RoundTrip(Verb verb, const std::vector<std::uint8_t>& body,
                   std::vector<std::uint8_t>* reply);

  Socket sock_;
};

}  // namespace operb::server

#endif  // OPERB_SERVER_CLIENT_H_
