#ifndef OPERB_SERVER_SERVER_H_
#define OPERB_SERVER_SERVER_H_

/// \file
/// The long-running trajectory daemon: a live StreamEngine ingesting
/// concurrent client streams, a sealed store growing behind it, and
/// queries answered over both with a read-your-writes merge
/// (DESIGN.md §11).
///
/// Data layout per object, oldest to newest:
///
///   sealed store blocks | in-memory overlay | in-flight engine tail
///   (StoreReader)         (segments emitted   (what FinishObject
///                          since the last      would emit right now —
///                          seal)               via the engine's tail-
///                                              snapshot seam)
///
/// The three layers partition the object's emission sequence, so
/// concatenating them *is* the offline answer at the snapshot point.
/// Consistency: a query captures the overlay boundary of each live
/// object on the owning worker thread itself (inside the tail-snapshot
/// visitor), so tail and overlay prefix always describe the same
/// stream prefix — no torn tails. Seals take the seal lock
/// exclusively; queries hold it shared across their whole merge.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "engine/stream_engine.h"
#include "geo/bbox.h"
#include "geo/point.h"
#include "server/protocol.h"
#include "server/socket.h"
#include "store/env.h"
#include "store/reader.h"
#include "traj/multi_object.h"

namespace operb::server {

/// Configuration of a TrajectoryServer.
struct ServerOptions {
  /// The engine the daemon ingests into. track_segment_times is forced
  /// on (the merge needs timed segments); the spec's zeta becomes the
  /// store's zeta.
  engine::StreamEngineOptions engine;

  /// Store directory the daemon owns. Created fresh at Start (the
  /// daemon is the writer; point readers elsewhere).
  std::string store_path;

  /// Shard count of the written store (store::StoreWriterOptions).
  std::size_t store_shards = 4;

  /// Background seal period; <= 0 disables the sealer thread (sealing
  /// then happens only on the kSeal verb and at Stop()).
  double seal_interval_seconds = 0.5;

  /// INGEST admission: reject with BUSY when any target shard's ring
  /// occupancy exceeds this fraction of its capacity. The never-drop
  /// SPSC backpressure stays the last line of defense; this turns it
  /// into explicit flow control before the producer would stall.
  double busy_fraction = 0.75;

  /// Retry-after hint carried in BUSY responses, milliseconds.
  std::uint32_t busy_retry_ms = 5;

  /// Written at Stop() when non-empty: final engine checkpoint / final
  /// obs metrics snapshot (the graceful-lifecycle contract).
  std::string final_checkpoint_path;
  std::string final_metrics_path;

  /// Write-side filesystem seam for the store and checkpoints
  /// (nullptr: real filesystem) — the fault-injection hook of the
  /// lifecycle tests.
  store::Env* env = nullptr;

  /// Test-only: runs inside the engine's timed sink (worker threads)
  /// before each overlay append — a deterministic brake that lets
  /// tests saturate the rings and observe BUSY.
  std::function<void(const traj::TimedSegment&)> sink_hook_for_test;

  Status Validate() const;
};

/// The daemon. Start() binds, spins up the accept loop and worker
/// threads; Stop() (or destruction) drains connections, closes the
/// engine, seals the store and writes the final artifacts. All public
/// methods are thread-safe.
class TrajectoryServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()), creates the
  /// store, starts the engine, the accept loop and the sealer.
  static Result<std::unique_ptr<TrajectoryServer>> Start(
      const ServerOptions& options, std::uint16_t port);

  ~TrajectoryServer();
  TrajectoryServer(const TrajectoryServer&) = delete;
  TrajectoryServer& operator=(const TrajectoryServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Graceful shutdown: stop accepting, wake and join every
  /// connection, final checkpoint, engine Close (finishing every live
  /// object into the overlay), final seal, final metrics snapshot.
  /// Idempotent; returns the first error encountered (the store is
  /// still left reopenable — that is what the fault-matrix test
  /// asserts).
  Status Stop();

  /// True once a client's kShutdown verb was honored; the daemon's
  /// main() waits on this (or a signal) and then calls Stop().
  bool ShutdownRequested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  /// Blocks until ShutdownRequested() (checked every 50 ms) — the
  /// daemon main-loop helper; returns immediately if already stopped.
  void WaitForShutdownRequest();

  // The server's own query/ingest surface — what connection threads
  // call, exposed publicly so in-process tests and the bench harness
  // can drive the merge without a socket in the way.

  /// Ingests a batch. Returns true when accepted; false = BUSY (the
  /// admission check tripped; nothing was ingested, retry after
  /// options().busy_retry_ms).
  Result<bool> Ingest(std::span<const traj::ObjectUpdate> updates);

  Status FinishObject(traj::ObjectId id);

  /// Read-your-writes merged queries (see file comment). Results are
  /// in the store's canonical order: ascending object id, emission
  /// order within an object — byte-identical to what a store that had
  /// sealed everything would answer.
  Result<std::vector<traj::TimedSegment>> QueryObject(traj::ObjectId id,
                                                      double t_min,
                                                      double t_max);
  Result<std::vector<traj::TimedSegment>> QueryWindow(
      const geo::BoundingBox& window, double t_min, double t_max,
      bool flat_scan);
  Result<geo::Point> PositionAt(traj::ObjectId id, double t);

  StatsBody Stats();

  /// Forces a seal now; returns the sealed-segment total on success.
  Result<std::uint64_t> Seal();

  /// Writes an engine checkpoint (drain barrier; concurrent ingest
  /// briefly blocks) / an obs metrics snapshot to `path`.
  Status WriteCheckpoint(const std::string& path);
  Status WriteMetricsSnapshot(const std::string& path);

  const ServerOptions& options() const { return options_; }

 private:
  /// Per-engine-shard slice of the overlay. The mutex is leaf-level:
  /// nothing is called while holding it.
  struct OverlayShard {
    std::mutex mu;
    std::unordered_map<traj::ObjectId, std::vector<traj::TimedSegment>>
        segments;
  };

  /// What a tail snapshot captured for one live object — on the worker
  /// thread, so tail and overlay_prefix describe the same prefix.
  struct TailCapture {
    std::size_t overlay_prefix = 0;
    std::vector<traj::TimedSegment> tail;
  };

  struct Connection {
    Socket sock;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  explicit TrajectoryServer(const ServerOptions& options);

  Status StartImpl(std::uint16_t port);
  void AcceptLoop();
  void SealerLoop();
  void ServeConnection(Connection* conn);
  /// Handles one request frame; returns false when the connection
  /// should close (shutdown honored).
  bool Dispatch(Connection* conn, Verb verb,
                std::span<const std::uint8_t> body);
  /// Joins finished connection threads; with `all`, wakes and joins
  /// every connection (Stop).
  void ReapConnections(bool all);

  /// The engine's timed sink (worker threads): append to the overlay.
  void OnSegment(const traj::TimedSegment& s);

  OverlayShard& OverlayOf(traj::ObjectId id) {
    return *overlay_[traj::ShardOfObject(id, overlay_.size())];
  }

  /// First `prefix` overlay segments of `id` overlapping
  /// [t_min, t_max], appended to `out` in emission order.
  void AppendOverlay(traj::ObjectId id, std::size_t prefix, double t_min,
                     double t_max, std::vector<traj::TimedSegment>* out);

  /// Seal with the exclusive lock already held.
  Status SealLocked();

  ServerOptions options_;
  Listener listener_;
  std::unique_ptr<engine::StreamEngine> engine_;
  /// Serializes every engine producer call (Push/Flush/snapshot/
  /// checkpoint) — the engine's single-producer contract.
  std::mutex engine_mu_;

  /// Seal lock: queries shared (reader_ and the overlay boundary are
  /// stable across their merge), seals exclusive. Engine workers never
  /// take it (they only touch leaf overlay mutexes) — that asymmetry
  /// is what makes the lock order cycle-free; see DESIGN.md §11.
  std::shared_mutex seal_mu_;
  std::unique_ptr<store::StoreReader> reader_;  ///< guarded by seal_mu_
  std::vector<std::unique_ptr<OverlayShard>> overlay_;
  /// A failed seal session poisons further seals (segments already
  /// handed to a torn writer session must not be re-appended); the
  /// overlay keeps serving everything unsealed.
  bool seal_poisoned_ = false;  ///< guarded by seal_mu_
  Status seal_error_;           ///< guarded by seal_mu_

  std::thread accept_thread_;
  std::thread sealer_thread_;
  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::mutex stop_mu_;
  bool stopped_ = false;  ///< guarded by stop_mu_
  Status stop_status_;    ///< guarded by stop_mu_

  std::atomic<std::uint64_t> ingest_points_{0};
  std::atomic<std::uint64_t> segments_emitted_{0};
  std::atomic<std::uint64_t> backpressure_rejects_{0};
  std::atomic<std::uint64_t> seals_{0};
  std::atomic<std::uint64_t> connections_open_{0};
};

}  // namespace operb::server

#endif  // OPERB_SERVER_SERVER_H_
