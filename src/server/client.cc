#include "server/client.h"

#include <chrono>
#include <thread>

#include "common/serial.h"

namespace operb::server {

namespace {

Status BusyStatus() {
  return Status::IOError("server busy (flow control) — retry");
}

}  // namespace

Result<Client> Client::Connect(const std::string& host, std::uint16_t port) {
  OPERB_ASSIGN_OR_RETURN(Socket sock, Socket::Connect(host, port));
  return Client(std::move(sock));
}

Status Client::RoundTrip(Verb verb, const std::vector<std::uint8_t>& body,
                         std::vector<std::uint8_t>* reply) {
  OPERB_RETURN_IF_ERROR(
      SendFrame(sock_, static_cast<std::uint8_t>(verb), body));
  std::uint8_t tag = 0;
  OPERB_RETURN_IF_ERROR(RecvFrame(sock_, &tag, reply));
  const WireStatus ws = static_cast<WireStatus>(tag);
  if (ws == WireStatus::kOk) return Status::OK();
  if (ws == WireStatus::kBusy) return BusyStatus();
  return StatusFromWire(
      ws, std::string(reinterpret_cast<const char*>(reply->data()),
                      reply->size()));
}

Result<IngestAck> Client::TryIngest(
    std::span<const traj::ObjectUpdate> updates) {
  std::vector<std::uint8_t> body;
  serial::PutU32(static_cast<std::uint32_t>(updates.size()), &body);
  for (const traj::ObjectUpdate& u : updates) {
    serial::PutU64(u.object_id, &body);
    serial::PutF64(u.point.t, &body);
    serial::PutF64(u.point.x, &body);
    serial::PutF64(u.point.y, &body);
  }
  OPERB_RETURN_IF_ERROR(
      SendFrame(sock_, static_cast<std::uint8_t>(Verb::kIngest), body));
  std::uint8_t tag = 0;
  std::vector<std::uint8_t> reply;
  OPERB_RETURN_IF_ERROR(RecvFrame(sock_, &tag, &reply));
  std::size_t pos = 0;
  IngestAck ack;
  switch (static_cast<WireStatus>(tag)) {
    case WireStatus::kOk:
      ack.accepted = true;
      if (!serial::GetU64(reply, &pos, &ack.points)) {
        return Status::IOError("malformed ingest ack");
      }
      return ack;
    case WireStatus::kBusy:
      if (!serial::GetU32(reply, &pos, &ack.retry_after_ms)) {
        return Status::IOError("malformed busy reply");
      }
      return ack;
    default:
      return StatusFromWire(
          static_cast<WireStatus>(tag),
          std::string(reinterpret_cast<const char*>(reply.data()),
                      reply.size()));
  }
}

Status Client::Ingest(std::span<const traj::ObjectUpdate> updates,
                      int max_attempts) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    OPERB_ASSIGN_OR_RETURN(const IngestAck ack, TryIngest(updates));
    if (ack.accepted) return Status::OK();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::max<std::uint32_t>(
            1, ack.retry_after_ms)));
  }
  return Status::IOError("server stayed busy across " +
                         std::to_string(max_attempts) + " ingest attempts");
}

Status Client::FinishObject(traj::ObjectId id) {
  std::vector<std::uint8_t> body;
  serial::PutU64(id, &body);
  std::vector<std::uint8_t> reply;
  return RoundTrip(Verb::kFinishObject, body, &reply);
}

namespace {

Result<std::vector<traj::TimedSegment>> ParseSegments(
    const std::vector<std::uint8_t>& reply) {
  std::size_t pos = 0;
  std::uint32_t count = 0;
  if (!serial::GetU32(reply, &pos, &count)) {
    return Status::IOError("malformed segment reply");
  }
  std::vector<traj::TimedSegment> out(count);
  for (traj::TimedSegment& s : out) {
    if (!GetTimedSegment(reply, &pos, &s)) {
      return Status::IOError("malformed segment reply");
    }
  }
  return out;
}

}  // namespace

Result<std::vector<traj::TimedSegment>> Client::QueryObject(traj::ObjectId id,
                                                            double t_min,
                                                            double t_max) {
  std::vector<std::uint8_t> body;
  serial::PutU64(id, &body);
  serial::PutF64(t_min, &body);
  serial::PutF64(t_max, &body);
  std::vector<std::uint8_t> reply;
  OPERB_RETURN_IF_ERROR(RoundTrip(Verb::kQueryObject, body, &reply));
  return ParseSegments(reply);
}

Result<std::vector<traj::TimedSegment>> Client::QueryWindow(
    const geo::BoundingBox& window, double t_min, double t_max,
    bool flat_scan) {
  std::vector<std::uint8_t> body;
  serial::PutF64(window.min_x, &body);
  serial::PutF64(window.min_y, &body);
  serial::PutF64(window.max_x, &body);
  serial::PutF64(window.max_y, &body);
  serial::PutF64(t_min, &body);
  serial::PutF64(t_max, &body);
  serial::PutU8(flat_scan ? 1 : 0, &body);
  std::vector<std::uint8_t> reply;
  OPERB_RETURN_IF_ERROR(RoundTrip(Verb::kQueryWindow, body, &reply));
  return ParseSegments(reply);
}

Result<geo::Point> Client::PositionAt(traj::ObjectId id, double t) {
  std::vector<std::uint8_t> body;
  serial::PutU64(id, &body);
  serial::PutF64(t, &body);
  std::vector<std::uint8_t> reply;
  OPERB_RETURN_IF_ERROR(RoundTrip(Verb::kPositionAt, body, &reply));
  std::size_t pos = 0;
  geo::Point p;
  if (!serial::GetF64(reply, &pos, &p.x) ||
      !serial::GetF64(reply, &pos, &p.y) ||
      !serial::GetF64(reply, &pos, &p.t)) {
    return Status::IOError("malformed position reply");
  }
  return p;
}

Result<StatsBody> Client::Stats() {
  std::vector<std::uint8_t> reply;
  OPERB_RETURN_IF_ERROR(RoundTrip(Verb::kStats, {}, &reply));
  std::size_t pos = 0;
  StatsBody stats;
  if (!GetStatsBody(reply, &pos, &stats)) {
    return Status::IOError("malformed stats reply");
  }
  return stats;
}

Status Client::Checkpoint(const std::string& path) {
  std::vector<std::uint8_t> body(path.begin(), path.end());
  std::vector<std::uint8_t> reply;
  return RoundTrip(Verb::kCheckpoint, body, &reply);
}

Status Client::MetricsSnapshot(const std::string& path) {
  std::vector<std::uint8_t> body(path.begin(), path.end());
  std::vector<std::uint8_t> reply;
  return RoundTrip(Verb::kMetricsSnapshot, body, &reply);
}

Result<std::uint64_t> Client::Seal() {
  std::vector<std::uint8_t> reply;
  OPERB_RETURN_IF_ERROR(RoundTrip(Verb::kSeal, {}, &reply));
  std::size_t pos = 0;
  std::uint64_t sealed = 0;
  if (!serial::GetU64(reply, &pos, &sealed)) {
    return Status::IOError("malformed seal reply");
  }
  return sealed;
}

Status Client::Shutdown() {
  std::vector<std::uint8_t> reply;
  return RoundTrip(Verb::kShutdown, {}, &reply);
}

}  // namespace operb::server
