#include "server/protocol.h"

#include "common/serial.h"
#include "traj/piecewise.h"

namespace operb::server {

void PutTimedSegment(const traj::TimedSegment& s,
                     std::vector<std::uint8_t>* out) {
  serial::PutU64(s.object_id, out);
  traj::SerializeSegment(s.segment, out);
  serial::PutF64(s.t_start, out);
  serial::PutF64(s.t_end, out);
}

bool GetTimedSegment(std::span<const std::uint8_t> in, std::size_t* pos,
                     traj::TimedSegment* s) {
  if (!serial::GetU64(in, pos, &s->object_id)) return false;
  if (!traj::DeserializeSegment(in, pos, &s->segment).ok()) return false;
  return serial::GetF64(in, pos, &s->t_start) &&
         serial::GetF64(in, pos, &s->t_end);
}

void PutStatsBody(const StatsBody& s, std::vector<std::uint8_t>* out) {
  serial::PutU64(s.live_objects, out);
  serial::PutU64(s.ingest_points, out);
  serial::PutU64(s.segments_emitted, out);
  serial::PutU64(s.sealed_segments, out);
  serial::PutU64(s.backpressure_rejects, out);
  serial::PutU64(s.seals, out);
  serial::PutU64(s.connections, out);
}

bool GetStatsBody(std::span<const std::uint8_t> in, std::size_t* pos,
                  StatsBody* s) {
  return serial::GetU64(in, pos, &s->live_objects) &&
         serial::GetU64(in, pos, &s->ingest_points) &&
         serial::GetU64(in, pos, &s->segments_emitted) &&
         serial::GetU64(in, pos, &s->sealed_segments) &&
         serial::GetU64(in, pos, &s->backpressure_rejects) &&
         serial::GetU64(in, pos, &s->seals) &&
         serial::GetU64(in, pos, &s->connections);
}

WireStatus WireStatusOf(const Status& s) {
  switch (s.code()) {
    case StatusCode::kOk:
      return WireStatus::kOk;
    case StatusCode::kNotFound:
      return WireStatus::kNotFound;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kUnimplemented:
      return WireStatus::kInvalidArgument;
    case StatusCode::kIOError:
    case StatusCode::kCorruption:
      return WireStatus::kIOError;
    default:
      return WireStatus::kInternal;
  }
}

Status StatusFromWire(WireStatus ws, const std::string& message) {
  switch (ws) {
    case WireStatus::kOk:
      return Status::OK();
    case WireStatus::kNotFound:
      return Status::NotFound(message);
    case WireStatus::kInvalidArgument:
      return Status::InvalidArgument(message);
    case WireStatus::kIOError:
      return Status::IOError(message);
    case WireStatus::kBusy:
    case WireStatus::kInternal:
      break;
  }
  return Status::Internal(message);
}

}  // namespace operb::server
