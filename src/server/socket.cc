#include "server/socket.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/serial.h"
#include "server/protocol.h"

namespace operb::server {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

/// Request/response round trips are small; Nagle only adds latency.
void DisableNagle(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

Status Socket::SendAll(const void* data, std::size_t n) {
  if (fd_ < 0) return Status::IOError("send on a closed socket");
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return Status::OK();
}

Status Socket::RecvAll(void* data, std::size_t n) {
  if (fd_ < 0) return Status::IOError("recv on a closed socket");
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (r == 0) {
      if (got == 0) return Status::NotFound("connection closed by peer");
      return Status::IOError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return Status::OK();
}

Result<Socket> Socket::Connect(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::IOError("cannot resolve " + host + ": " +
                           ::gai_strerror(rc));
  }
  Status last = Status::IOError("no addresses for " + host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(res);
      DisableNagle(fd);
      return Socket(fd);
    }
    last = Errno("connect to " + host + ":" + service);
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Listener> Listener::Bind(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Errno("bind 127.0.0.1:" + std::to_string(port));
    ::close(fd);
    return s;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status s = Errno("getsockname");
    ::close(fd);
    return s;
  }
  Listener l;
  l.fd_ = fd;
  l.port_ = ntohs(addr.sin_port);
  return l;
}

Result<Socket> Listener::AcceptWithTimeout(int timeout_ms) {
  if (fd_ < 0) return Status::IOError("accept on a closed listener");
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return Socket();  // treat as timeout, poll again
    return Errno("poll");
  }
  if (ready == 0) return Socket();  // timeout
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return Socket();
    return Errno("accept");
  }
  DisableNagle(conn);
  return Socket(conn);
}

Status SendFrame(Socket& sock, std::uint8_t tag,
                 std::span<const std::uint8_t> body) {
  if (body.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame body exceeds the protocol cap");
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + 1 + body.size());
  serial::PutU32(static_cast<std::uint32_t>(1 + body.size()), &frame);
  serial::PutU8(tag, &frame);
  frame.insert(frame.end(), body.begin(), body.end());
  return sock.SendAll(frame.data(), frame.size());
}

Status RecvFrame(Socket& sock, std::uint8_t* tag,
                 std::vector<std::uint8_t>* body) {
  std::uint8_t header[4];
  OPERB_RETURN_IF_ERROR(sock.RecvAll(header, sizeof(header)));
  std::size_t pos = 0;
  std::uint32_t len = 0;
  (void)serial::GetU32(std::span<const std::uint8_t>(header, 4), &pos, &len);
  if (len < 1 || len > 1 + kMaxFrameBytes) {
    return Status::IOError("malformed frame length " + std::to_string(len));
  }
  OPERB_RETURN_IF_ERROR(sock.RecvAll(tag, 1));
  body->resize(len - 1);
  if (!body->empty()) {
    OPERB_RETURN_IF_ERROR(sock.RecvAll(body->data(), body->size()));
  }
  return Status::OK();
}

}  // namespace operb::server
