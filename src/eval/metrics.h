#ifndef OPERB_EVAL_METRICS_H_
#define OPERB_EVAL_METRICS_H_

#include <cstddef>
#include <map>
#include <vector>

#include "traj/piecewise.h"
#include "traj/trajectory.h"

namespace operb::eval {

/// Compression ratio of one representation: |T| / |T_dot| (stored points
/// over original points). Lower is better; matches the paper's Section
/// 6.2.2 definition.
double CompressionRatio(const traj::Trajectory& original,
                        const traj::PiecewiseRepresentation& representation);

/// Aggregate compression ratio over a dataset:
/// (sum |T_j|) / (sum |T_dot_j|).
double AggregateCompressionRatio(
    const std::vector<traj::Trajectory>& originals,
    const std::vector<traj::PiecewiseRepresentation>& representations);

/// Per-point distance statistics of a representation against its original
/// trajectory. Each point is measured against the *line* of the segment
/// that represents it (the paper's error definition).
struct ErrorStats {
  double average = 0.0;  ///< the paper's "average error" (Figure 18)
  double max = 0.0;
  std::size_t points = 0;
};

ErrorStats MeasureError(const traj::Trajectory& original,
                        const traj::PiecewiseRepresentation& representation);

/// Dataset-level average error: sum of all point distances over the total
/// point count (exactly the Section 6.2.3 formula).
ErrorStats AggregateError(
    const std::vector<traj::Trajectory>& originals,
    const std::vector<traj::PiecewiseRepresentation>& representations);

/// Segment-size distribution Z(k) of Figure 17: Z[k] = number of segments
/// representing exactly k data points (endpoints double-counted between
/// adjacent segments).
std::map<std::size_t, std::size_t> SegmentSizeDistribution(
    const std::vector<traj::PiecewiseRepresentation>& representations);

/// Number of anomalous segments (PointCount() == 2) in a representation.
std::size_t CountAnomalousSegments(
    const traj::PiecewiseRepresentation& representation);

}  // namespace operb::eval

#endif  // OPERB_EVAL_METRICS_H_
