#ifndef OPERB_EVAL_VERIFIER_H_
#define OPERB_EVAL_VERIFIER_H_

#include <cstddef>
#include <string>

#include "traj/piecewise.h"
#include "traj/trajectory.h"

namespace operb::eval {

/// Result of checking a representation against the paper's error-bound
/// definition.
struct VerificationResult {
  bool bounded = true;
  /// Worst distance found from a point to its nearest candidate line.
  double worst_distance = 0.0;
  std::size_t worst_index = 0;
  std::size_t violations = 0;

  std::string ToString() const;
};

/// Verifies the paper's error-bound definition (Section 3.2): every
/// original point must lie within `zeta` of the line of *some* output
/// segment. The check is existential; this verifier tests the covering
/// segment and its immediate neighbors (which is where OPERB's absorb
/// optimization and the closing segment can shift coverage), in O(n).
///
/// `slack` forgives floating-point rounding (distances up to
/// zeta * (1 + slack) pass).
VerificationResult VerifyErrorBound(
    const traj::Trajectory& original,
    const traj::PiecewiseRepresentation& representation, double zeta,
    double slack = 1e-9);

}  // namespace operb::eval

#endif  // OPERB_EVAL_VERIFIER_H_
