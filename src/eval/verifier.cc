#include "eval/verifier.h"

#include <algorithm>
#include <cstdio>

#include "geo/distance.h"

namespace operb::eval {

std::string VerificationResult::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{bounded=%d, worst=%.6f at %zu, violations=%zu}", bounded,
                worst_distance, worst_index, violations);
  return buf;
}

VerificationResult VerifyErrorBound(
    const traj::Trajectory& original,
    const traj::PiecewiseRepresentation& representation, double zeta,
    double slack) {
  VerificationResult result;
  const double limit = zeta * (1.0 + slack) + 1e-9;
  const auto& segs = representation.segments();
  std::size_t next = 0;
  for (std::size_t si = 0; si < segs.size(); ++si) {
    const traj::RepresentedSegment& s = segs[si];
    const std::size_t begin = std::max(s.first_index, next);
    next = s.last_index + 1;
    for (std::size_t i = begin; i <= s.last_index && i < original.size();
         ++i) {
      const geo::Vec2 p = original[i].pos();
      double d = geo::PointToLineDistance(p, s.start, s.end);
      if (d > limit && si > 0) {
        d = std::min(d, geo::PointToLineDistance(p, segs[si - 1].start,
                                                 segs[si - 1].end));
      }
      if (d > limit && si + 1 < segs.size()) {
        d = std::min(d, geo::PointToLineDistance(p, segs[si + 1].start,
                                                 segs[si + 1].end));
      }
      if (d > result.worst_distance) {
        result.worst_distance = d;
        result.worst_index = i;
      }
      if (d > limit) {
        result.bounded = false;
        ++result.violations;
      }
    }
  }
  return result;
}

}  // namespace operb::eval
