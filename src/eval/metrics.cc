#include "eval/metrics.h"

#include <algorithm>

#include "common/check.h"
#include "geo/distance.h"

namespace operb::eval {

double CompressionRatio(const traj::Trajectory& original,
                        const traj::PiecewiseRepresentation& representation) {
  if (original.empty()) return 0.0;
  return static_cast<double>(representation.StoredPointCount()) /
         static_cast<double>(original.size());
}

double AggregateCompressionRatio(
    const std::vector<traj::Trajectory>& originals,
    const std::vector<traj::PiecewiseRepresentation>& representations) {
  OPERB_CHECK(originals.size() == representations.size());
  std::size_t stored = 0;
  std::size_t raw = 0;
  for (std::size_t i = 0; i < originals.size(); ++i) {
    stored += representations[i].StoredPointCount();
    raw += originals[i].size();
  }
  return raw == 0 ? 0.0
                  : static_cast<double>(stored) / static_cast<double>(raw);
}

namespace {

/// Accumulates the distance of every original point to the line of its
/// covering segment.
void AccumulateError(const traj::Trajectory& original,
                     const traj::PiecewiseRepresentation& representation,
                     double* sum, double* max, std::size_t* count) {
  // Attribute each original point to exactly one segment: a boundary
  // point shared by two segments goes to the earlier one; a patched
  // junction's index gap means both junction points get attributed (each
  // to the side whose line it lies on).
  std::size_t next = 0;
  for (const traj::RepresentedSegment& s : representation) {
    const std::size_t begin = std::max(s.first_index, next);
    next = s.last_index + 1;
    for (std::size_t i = begin; i <= s.last_index; ++i) {
      const double d =
          geo::PointToLineDistance(original[i].pos(), s.start, s.end);
      *sum += d;
      *max = std::max(*max, d);
      ++*count;
    }
  }
}

}  // namespace

ErrorStats MeasureError(const traj::Trajectory& original,
                        const traj::PiecewiseRepresentation& representation) {
  ErrorStats stats;
  double sum = 0.0;
  AccumulateError(original, representation, &sum, &stats.max, &stats.points);
  stats.average = stats.points == 0
                      ? 0.0
                      : sum / static_cast<double>(stats.points);
  return stats;
}

ErrorStats AggregateError(
    const std::vector<traj::Trajectory>& originals,
    const std::vector<traj::PiecewiseRepresentation>& representations) {
  OPERB_CHECK(originals.size() == representations.size());
  ErrorStats stats;
  double sum = 0.0;
  for (std::size_t i = 0; i < originals.size(); ++i) {
    AccumulateError(originals[i], representations[i], &sum, &stats.max,
                    &stats.points);
  }
  stats.average =
      stats.points == 0 ? 0.0 : sum / static_cast<double>(stats.points);
  return stats;
}

std::map<std::size_t, std::size_t> SegmentSizeDistribution(
    const std::vector<traj::PiecewiseRepresentation>& representations) {
  std::map<std::size_t, std::size_t> z;
  for (const traj::PiecewiseRepresentation& rep : representations) {
    for (const traj::RepresentedSegment& s : rep) {
      ++z[s.PointCount()];
    }
  }
  return z;
}

std::size_t CountAnomalousSegments(
    const traj::PiecewiseRepresentation& representation) {
  std::size_t n = 0;
  for (const traj::RepresentedSegment& s : representation) {
    if (s.PointCount() == 2) ++n;
  }
  return n;
}

}  // namespace operb::eval
