#include "core/operb.h"

#include <cmath>

#include "common/check.h"
#include "common/serial.h"
#include "geo/distance.h"
#include "geo/simd.h"

namespace operb::core {

namespace {

/// SoA staging for the batched Push(span) fast paths. Thread-local
/// scratch, not per-stream state: the buffers are only live inside one
/// {Absorb,Seek,Extend}Run call (no sink callback runs while they hold
/// data), so every stream on a thread — the engine keeps one stream per
/// live object — shares one instance, and pooled streams stay small.
/// Plain arrays with static (zero) initialization: no heap allocation,
/// no thread-local init guard on the hot path.
struct StageBuffers {
  double x[OperbStream::kStageCapacity];
  double y[OperbStream::kStageCapacity];
  double r[OperbStream::kStageCapacity];    ///< radii from the anchor
  double off[OperbStream::kStageCapacity];  ///< signed offsets vs L
  double ra[OperbStream::kStageCapacity];   ///< signed offsets vs R_a
  double dot[OperbStream::kStageCapacity];  ///< projections onto L
};

thread_local StageBuffers tls_stage;

}  // namespace

OperbStream::OperbStream(const OperbOptions& options) : options_(options) {
  OPERB_CHECK_MSG(options.Validate().ok(), "invalid OperbOptions");
  // The drift guard is only needed where Theorem 2's proof does not apply:
  // any of the heuristic optimizations (2)-(4), or a non-paper fitting
  // parameterization.
  const bool paper_fitting = options_.step_length_factor == 0.5 &&
                             options_.activation_slack_factor == 0.25;
  guard_engaged_ = options_.strict_bound_guard &&
                   (options_.opt_adjusted_distance ||
                    options_.opt_closer_line || options_.opt_missing_active ||
                    !paper_fitting);
}

void OperbStream::SetSink(traj::SegmentSink sink) {
  OPERB_CHECK_MSG(next_index_ == 0, "SetSink after the first Push");
  sink_ = std::move(sink);
}

std::vector<traj::RepresentedSegment> OperbStream::TakeEmitted() {
  std::vector<traj::RepresentedSegment> out;
  out.swap(emitted_);
  last_take_size_ = out.size();
  return out;
}

void OperbStream::TakeEmitted(std::vector<traj::RepresentedSegment>* out) {
  out->clear();
  out->swap(emitted_);  // emitted_ inherits the caller's old capacity
  last_take_size_ = out->size();
}

void OperbStream::Emit(const traj::RepresentedSegment& s) {
  last_emitted_ = s;
  any_emitted_ = true;
  ++stats_.segments_emitted;
  if (sink_) {
    sink_(s);
    return;
  }
  if (emitted_.capacity() == 0) {
    // First growth (or a TakeEmitted() that moved the storage out): size
    // from the emission history instead of libstdc++'s 1-element start — a
    // polling caller tends to repeat batches of ~last_take_size_ segments.
    emitted_.reserve(std::max<std::size_t>(8, last_take_size_));
  }
  emitted_.push_back(s);
}

void OperbStream::Push(const geo::Point& p) {
  OPERB_DCHECK(mode_ != Mode::kFinished);
  const geo::Vec2 pos = p.pos();
  const std::size_t idx = next_index_++;
  last_pos_ = pos;
  last_index_ = idx;
  ++stats_.points_processed;

  if (mode_ == Mode::kIdle) {
    // The very first point anchors the first segment.
    StartSegment(pos, idx, /*detached=*/false);
    covered_index_ = idx;
    mode_ = Mode::kSeek;
    return;
  }
  ProcessPoint(pos, idx);
}

void OperbStream::Push(std::span<const geo::Point> points) {
  // Batched driver: each mode's "point fits, keep going" run is consumed
  // through the SoA/simd fast path; the point that ends a run (absorb
  // failure, activation, bound violation, cap) goes through the scalar
  // Push, which recomputes the same IEEE values and performs the mode
  // change. Output and state are bit-identical to point-wise Push.
  const std::size_t n = points.size();
  std::size_t i = 0;
  while (i < n) {
    switch (mode_) {
      case Mode::kAbsorb: {
        if (options_.opt_absorb) {
          i += AbsorbRun(points.subspan(i));
          if (i >= n) return;
        }
        Push(points[i++]);  // fails the absorb test: emits, re-dispatches
        break;
      }
      case Mode::kSeek: {
        i += SeekRun(points.subspan(i));
        if (i >= n) return;
        Push(points[i++]);  // first active point (or a cap break)
        break;
      }
      case Mode::kExtend: {
        if (extend_skip_ > 0) {
          // Recent extend runs consumed nothing (activation-dominated
          // stream): back off from staging for a while.
          --extend_skip_;
          Push(points[i++]);
          break;
        }
        bool blocked = false;
        const std::size_t consumed = ExtendRun(points.subspan(i), &blocked);
        i += consumed;
        if (consumed == 0) {
          extend_zero_streak_ = std::min<std::uint32_t>(
              extend_zero_streak_ + 1, 5);  // skip at most 32 points
          extend_skip_ = 1u << extend_zero_streak_;
        } else {
          extend_zero_streak_ = 0;
        }
        if (i >= n) return;
        // Not blocked means the run only hit the speculation window edge:
        // loop around and stage the next (larger) window.
        if (blocked) Push(points[i++]);
        break;
      }
      case Mode::kIdle:
      case Mode::kFinished:
        Push(points[i++]);
        break;
    }
  }
}

std::size_t OperbStream::AbsorbRun(std::span<const geo::Point> points) {
  const geo::Vec2 anchor = pending_.start;
  const geo::Vec2 unit = pending_unit_;
  const double zeta = options_.zeta;
  // Peek before staging: on absorb-hostile streams (sparse sampling
  // breaks every point) the first point fails and the staging loop would
  // be pure waste. The consumed case re-verifies the point inside
  // CountWithin — same expression, same bits.
  const double d0 = geo::PointToLineDistanceDir(points[0].pos(), anchor, unit);
  if (!(d0 <= zeta)) return 0;

  StageBuffers& st = tls_stage;
  std::size_t consumed = 0;
  while (consumed < points.size()) {
    // First block small: absorb runs average a handful of points, so a
    // full-capacity stage would mostly copy points past the failure.
    const std::size_t cap = consumed == 0 ? 16 : kStageCapacity;
    const std::size_t m = std::min(cap, points.size() - consumed);
    for (std::size_t k = 0; k < m; ++k) {
      st.x[k] = points[consumed + k].x;
      st.y[k] = points[consumed + k].y;
    }
    const std::size_t fit =
        geo::simd::CountWithin(st.x, st.y, m, anchor, unit, zeta);
    consumed += fit;
    if (fit < m) break;
  }
  if (consumed > 0) {
    // Cumulative effect of `consumed` scalar absorb iterations.
    next_index_ += consumed;
    stats_.points_processed += consumed;
    stats_.points_absorbed += consumed;
    last_index_ = next_index_ - 1;
    last_pos_ = points[consumed - 1].pos();
    pending_.last_index = last_index_;
    covered_index_ = last_index_;
  }
  return consumed;
}

std::size_t OperbStream::SeekRun(std::span<const geo::Point> points) {
  const double threshold = options_.opt_first_active
                               ? options_.zeta
                               : options_.zeta * options_.activation_slack_factor;
  // Peek before staging (sparse streams activate on the first point).
  // A consumable first point is recomputed by the Radii kernel — same
  // expression, same bits.
  const double r0 = geo::Distance(points[0].pos(), anchor_pos_);
  if (!(r0 <= threshold)) return 0;

  // Stop before the point whose consumption would reach the per-segment
  // cap: the scalar path owns the cap-break transition.
  const std::size_t cap_room =
      options_.max_points_per_segment > points_in_segment_ + 1
          ? options_.max_points_per_segment - points_in_segment_ - 1
          : 0;
  StageBuffers& st = tls_stage;
  std::size_t consumed = 0;
  double max_radius = 0.0;
  bool stopped = false;
  while (!stopped && consumed < points.size() && consumed < cap_room) {
    const std::size_t cap = consumed == 0 ? 16 : kStageCapacity;
    const std::size_t m =
        std::min({cap, points.size() - consumed, cap_room - consumed});
    for (std::size_t k = 0; k < m; ++k) {
      st.x[k] = points[consumed + k].x;
      st.y[k] = points[consumed + k].y;
    }
    geo::simd::Radii(st.x, st.y, m, anchor_pos_, st.r);
    std::size_t fit = 0;
    for (; fit < m && st.r[fit] <= threshold; ++fit) {
      if (st.r[fit] > max_radius) max_radius = st.r[fit];
    }
    consumed += fit;
    stopped = fit < m;
  }
  if (consumed > 0) {
    next_index_ += consumed;
    stats_.points_processed += consumed;
    last_index_ = next_index_ - 1;
    last_pos_ = points[consumed - 1].pos();
    covered_index_ = last_index_;
    points_in_segment_ += consumed;
    // Equivalent to per-point NoteDriftDistance calls: the budget is a
    // running max, so folding the run's max first changes nothing.
    fitting_->NoteDriftDistance(max_radius);
  }
  return consumed;
}

std::size_t OperbStream::ExtendRun(std::span<const geo::Point> points,
                                   bool* blocked) {
  const std::size_t cap_room =
      options_.max_points_per_segment > points_in_segment_ + 1
          ? options_.max_points_per_segment - points_in_segment_ - 1
          : 0;
  const std::size_t window = std::min<std::size_t>(
      {extend_window_, points.size(), cap_room, kStageCapacity});
  if (window == 0) {
    *blocked = true;  // cap break — scalar path owns the transition
    return 0;
  }
  StageBuffers& st = tls_stage;
  for (std::size_t k = 0; k < window; ++k) {
    st.x[k] = points[k].x;
    st.y[k] = points[k].y;
  }
  const geo::Vec2 dir = fitting_->dir();
  geo::simd::StageExtend(st.x, st.y, window, anchor_pos_, dir, ra_unit_,
                         /*want_dot=*/guard_engaged_, st.r, st.off, st.ra,
                         st.dot);

  const double zeta = options_.zeta;
  geo::simd::ExtendAcceptParams params;
  params.slack = fitting_->slack();
  params.zeta = zeta;
  params.guard = guard_engaged_;
  const auto refresh_params = [&] {
    params.length = fitting_->length();
    params.d_plus_max = fitting_->d_plus_max();
    params.d_minus_max = fitting_->d_minus_max();
    params.drift_plus = fitting_->drift_plus();
    params.drift_minus = fitting_->drift_minus();
    params.drift_back = fitting_->drift_back();
    // An offset within both side maxima leaves the tentative maxima equal
    // to the current ones, so the adjusted-distance test reduces to this
    // per-window constant. Without optimization (2) the distance test is
    // |off| <= zeta/2 — implied by the maxima themselves (every observed
    // offset passed it), so no sum constraint applies.
    params.sum_ok = !options_.opt_adjusted_distance ||
                    (params.d_plus_max + params.d_minus_max) <= zeta;
  };
  refresh_params();
  std::size_t consumed = 0;
  while (consumed < window) {
    // Leading run of no-op consumes — inactive, inside both side maxima,
    // within zeta of R_a, inside the drift budgets — in one vectorized
    // sweep over the staged intermediates. Such points leave the fitting
    // state bit-for-bit unchanged, so skipping their Observe* calls is
    // exact, not approximate.
    consumed += geo::simd::CountExtendAccept(
        st.r + consumed, st.off + consumed, st.ra + consumed,
        st.dot + consumed, window - consumed, params);
    if (consumed >= window) break;
    // Full-semantics decision for the point the kernel rejected: it may
    // still consume (moving a maximum or budget), in which case the
    // params refresh and the sweep resumes.
    const double r = st.r[consumed];
    if (fitting_->IsActive(r)) break;  // activation: scalar path
    const double offset = st.off[consumed];
    bool distance_ok;
    if (options_.opt_adjusted_distance) {
      const double tentative_plus =
          std::max(offset > 0.0 ? offset : 0.0, fitting_->d_plus_max());
      const double tentative_minus =
          std::max(offset < 0.0 ? -offset : 0.0, fitting_->d_minus_max());
      distance_ok = (tentative_plus + tentative_minus) <= zeta;
    } else {
      distance_ok = std::fabs(offset) <= zeta / 2.0;
    }
    const double d_ra = std::fabs(st.ra[consumed]);
    if (!(distance_ok && d_ra <= zeta)) break;  // segment break: scalar
    if (guard_engaged_) {
      fitting_->ObservePointPrecomputed(offset, st.dot[consumed], r);
    } else {
      fitting_->ObserveOffset(offset);
    }
    ++consumed;
    refresh_params();
  }
  *blocked = consumed < window;
  if (consumed > 0) {
    next_index_ += consumed;
    stats_.points_processed += consumed;
    last_index_ = next_index_ - 1;
    last_pos_ = points[consumed - 1].pos();
    covered_index_ = last_index_;
    points_in_segment_ += consumed;
  }
  // Adapt the speculation depth: grow while runs fill the window, track
  // the observed run length when they end early.
  if (!*blocked) {
    extend_window_ = static_cast<std::uint32_t>(
        std::min<std::size_t>(extend_window_ * 2, kStageCapacity));
  } else {
    extend_window_ = static_cast<std::uint32_t>(
        std::max<std::size_t>(kExtendWindowMin, consumed));
  }
  return consumed;
}

void OperbStream::ProcessPoint(geo::Vec2 pos, std::size_t idx) {
  // A point may be re-dispatched once: when it breaks the current segment
  // it continues against the freshly started one (still O(1) per point).
  for (int pass = 0; pass < 3; ++pass) {
    switch (mode_) {
      case Mode::kAbsorb: {
        // Optimization (5): the pending segment keeps representing points
        // while they stay within zeta of its line.
        const double d =
            geo::PointToLineDistanceDir(pos, pending_.start, pending_unit_);
        if (options_.opt_absorb && d <= options_.zeta) {
          pending_.last_index = idx;
          covered_index_ = idx;
          ++stats_.points_absorbed;
          return;
        }
        EmitPending();
        continue;  // re-dispatch against the new segment (kSeek)
      }
      case Mode::kSeek: {
        const double r = geo::Distance(pos, anchor_pos_);
        ++points_in_segment_;
        // Optimization (1): postpone the first active point to radius
        // > zeta (default threshold: the activation slack, zeta/4). Every
        // point skipped here is within the threshold of the anchor, hence
        // within zeta of any line through it.
        const double threshold =
            options_.opt_first_active
                ? options_.zeta
                : options_.zeta * options_.activation_slack_factor;
        if (r <= threshold) {
          covered_index_ = idx;
          // A pre-direction point sits within `r` of any line through the
          // anchor; charge it to the drift budget.
          fitting_->NoteDriftDistance(r);
          if (points_in_segment_ >= options_.max_points_per_segment) {
            ++stats_.cap_breaks;
            // Degenerate cap break while seeking: close at the current
            // point (all consumed points are within `threshold` of the
            // anchor, so the bound holds for any segment through it).
            SetActive(pos, idx, r);
            covered_index_ = idx;
            mode_ = Mode::kExtend;
            BreakSegment();
            return;
          }
          return;
        }
        // First active point: case (2) of the fitting function.
        fitting_->Activate(pos);
        SetActive(pos, idx, r);
        covered_index_ = idx;
        mode_ = Mode::kExtend;
        return;
      }
      case Mode::kExtend: {
        const double r = geo::Distance(pos, anchor_pos_);
        if (points_in_segment_ + 1 >= options_.max_points_per_segment) {
          ++stats_.cap_breaks;
          BreakSegment();
          continue;
        }
        const bool is_active = fitting_->IsActive(r);
        const double offset = fitting_->SignedOffset(pos);
        const double d_line = std::fabs(offset);

        // The paper's distance condition d(P, L) <= zeta/2, or — with
        // optimization (2) — the relaxed d+max + d-max <= zeta.
        bool distance_ok;
        if (options_.opt_adjusted_distance) {
          const double tentative_plus =
              std::max(offset > 0.0 ? offset : 0.0, fitting_->d_plus_max());
          const double tentative_minus =
              std::max(offset < 0.0 ? -offset : 0.0, fitting_->d_minus_max());
          distance_ok = (tentative_plus + tentative_minus) <= options_.zeta;
        } else {
          distance_ok = d_line <= options_.zeta / 2.0;
        }

        if (!is_active) {
          // Inactive points must additionally stay within zeta of the
          // candidate segment R_a = anchor -> active (they will be
          // represented by it if the segment breaks here or later).
          const double d_ra =
              geo::PointToLineDistanceDir(pos, anchor_pos_, ra_unit_);
          if (distance_ok && d_ra <= options_.zeta) {
            if (guard_engaged_) {
              fitting_->ObservePoint(pos);
            } else {
              fitting_->ObserveOffset(offset);
            }
            covered_index_ = idx;
            ++points_in_segment_;
            return;
          }
          BreakSegment();
          continue;
        }
        // Active candidate: combined when the distance condition holds
        // and (when the heuristic optimizations are in play) the drift
        // guard proves every represented point stays within zeta of the
        // would-be chord.
        if (distance_ok) {
          const FittingFunction::ActivationPlan plan =
              fitting_->PlanActivation(pos, r);
          if (!guard_engaged_ || fitting_->ActivationKeepsBound(plan)) {
            // d+-max per the paper uses the distance to L_{i-1} (before
            // the rotation); the drift budgets take the post-rotation
            // position.
            fitting_->ObserveOffset(offset);
            fitting_->ApplyActivation(pos, plan);
            if (guard_engaged_) fitting_->ObservePoint(pos);
            SetActive(pos, idx, r);
            covered_index_ = idx;
            ++points_in_segment_;
            return;
          }
        }
        BreakSegment();
        continue;
      }
      case Mode::kIdle:
      case Mode::kFinished:
        OPERB_CHECK_MSG(false, "ProcessPoint in invalid mode");
    }
  }
  OPERB_CHECK_MSG(false, "point re-dispatched more than twice");
}

void OperbStream::SetActive(geo::Vec2 pos, std::size_t idx, double radius) {
  active_pos_ = pos;
  active_index_ = idx;
  // radius > zeta/4 whenever a point becomes active, so the division is
  // safe except for the degenerate cap-break-while-seeking path.
  ra_unit_ = radius > 0.0 ? (pos - anchor_pos_) / radius : geo::Vec2{1.0, 0.0};
}

void OperbStream::BreakSegment() {
  // The segment anchor -> active is determined; it represents everything
  // consumed so far ([segment_first_index_, covered_index_]).
  pending_.start = anchor_pos_;
  pending_.end = active_pos_;
  pending_.first_index = segment_first_index_;
  pending_.last_index = covered_index_;
  pending_.start_is_patch = anchor_detached_;
  pending_.end_is_patch = false;  // finalized in EmitPending
  pending_end_index_ = active_index_;
  const geo::Vec2 d = pending_.end - pending_.start;
  const double len = d.Norm();
  pending_unit_ = len > 0.0 ? d / len : geo::Vec2{1.0, 0.0};
  mode_ = Mode::kAbsorb;
}

void OperbStream::EmitPending() {
  pending_.end_is_patch = (pending_.last_index != pending_end_index_);
  Emit(pending_);
  StartSegment(pending_.end, pending_.last_index, pending_.end_is_patch);
  mode_ = Mode::kSeek;
}

void OperbStream::StartSegment(geo::Vec2 anchor, std::size_t chain_index,
                               bool detached) {
  anchor_pos_ = anchor;
  segment_first_index_ = chain_index;
  anchor_detached_ = detached;
  points_in_segment_ = 1;  // the anchor itself
  fitting_.emplace(anchor, options_);
}

void OperbStream::Reset() {
  mode_ = Mode::kIdle;
  emitted_.clear();  // keeps capacity for the next trajectory
  last_take_size_ = 0;
  stats_ = OperbStats{};
  last_emitted_ = traj::RepresentedSegment{};
  any_emitted_ = false;
  fitting_.reset();
  anchor_pos_ = geo::Vec2{};
  segment_first_index_ = 0;
  anchor_detached_ = false;
  points_in_segment_ = 0;
  active_pos_ = geo::Vec2{};
  active_index_ = 0;
  ra_unit_ = geo::Vec2{};
  pending_ = traj::RepresentedSegment{};
  pending_end_index_ = 0;
  pending_unit_ = geo::Vec2{};
  covered_index_ = 0;
  next_index_ = 0;
  last_pos_ = geo::Vec2{};
  last_index_ = 0;
  extend_window_ = kExtendWindowMin;
  extend_zero_streak_ = 0;
  extend_skip_ = 0;
}

void OperbStream::Serialize(std::vector<std::uint8_t>* out) const {
  serial::PutU8(static_cast<std::uint8_t>(mode_), out);
  serial::PutU32(static_cast<std::uint32_t>(emitted_.size()), out);
  for (const traj::RepresentedSegment& s : emitted_) {
    traj::SerializeSegment(s, out);
  }
  serial::PutU64(last_take_size_, out);
  serial::PutU64(stats_.points_processed, out);
  serial::PutU64(stats_.segments_emitted, out);
  serial::PutU64(stats_.points_absorbed, out);
  serial::PutU64(stats_.cap_breaks, out);
  traj::SerializeSegment(last_emitted_, out);
  serial::PutU8(any_emitted_ ? 1 : 0, out);
  serial::PutU8(fitting_.has_value() ? 1 : 0, out);
  if (fitting_.has_value()) fitting_->SerializeTo(out);
  serial::PutF64(anchor_pos_.x, out);
  serial::PutF64(anchor_pos_.y, out);
  serial::PutU64(segment_first_index_, out);
  serial::PutU8(anchor_detached_ ? 1 : 0, out);
  serial::PutU64(points_in_segment_, out);
  serial::PutF64(active_pos_.x, out);
  serial::PutF64(active_pos_.y, out);
  serial::PutU64(active_index_, out);
  serial::PutF64(ra_unit_.x, out);
  serial::PutF64(ra_unit_.y, out);
  traj::SerializeSegment(pending_, out);
  serial::PutU64(pending_end_index_, out);
  serial::PutF64(pending_unit_.x, out);
  serial::PutF64(pending_unit_.y, out);
  serial::PutU64(covered_index_, out);
  serial::PutU64(next_index_, out);
  serial::PutF64(last_pos_.x, out);
  serial::PutF64(last_pos_.y, out);
  serial::PutU64(last_index_, out);
}

Status OperbStream::Deserialize(std::span<const std::uint8_t> in,
                                std::size_t* pos) {
  std::uint8_t mode = 0;
  std::uint32_t emitted_count = 0;
  if (!serial::GetU8(in, pos, &mode) ||
      !serial::GetU32(in, pos, &emitted_count)) {
    return Status::Corruption("truncated OPERB stream state");
  }
  if (mode > static_cast<std::uint8_t>(Mode::kFinished)) {
    return Status::Corruption("OPERB stream mode out of range");
  }
  mode_ = static_cast<Mode>(mode);
  emitted_.clear();
  emitted_.reserve(emitted_count);
  for (std::uint32_t i = 0; i < emitted_count; ++i) {
    traj::RepresentedSegment s;
    OPERB_RETURN_IF_ERROR(traj::DeserializeSegment(in, pos, &s));
    emitted_.push_back(s);
  }
  std::uint64_t last_take = 0;
  std::uint64_t points_processed = 0;
  std::uint64_t segments_emitted = 0;
  std::uint64_t points_absorbed = 0;
  std::uint64_t cap_breaks = 0;
  if (!serial::GetU64(in, pos, &last_take) ||
      !serial::GetU64(in, pos, &points_processed) ||
      !serial::GetU64(in, pos, &segments_emitted) ||
      !serial::GetU64(in, pos, &points_absorbed) ||
      !serial::GetU64(in, pos, &cap_breaks)) {
    return Status::Corruption("truncated OPERB stream state");
  }
  last_take_size_ = static_cast<std::size_t>(last_take);
  stats_.points_processed = static_cast<std::size_t>(points_processed);
  stats_.segments_emitted = static_cast<std::size_t>(segments_emitted);
  stats_.points_absorbed = static_cast<std::size_t>(points_absorbed);
  stats_.cap_breaks = static_cast<std::size_t>(cap_breaks);
  OPERB_RETURN_IF_ERROR(traj::DeserializeSegment(in, pos, &last_emitted_));
  std::uint8_t any_emitted = 0;
  std::uint8_t has_fitting = 0;
  if (!serial::GetU8(in, pos, &any_emitted) ||
      !serial::GetU8(in, pos, &has_fitting)) {
    return Status::Corruption("truncated OPERB stream state");
  }
  if (any_emitted > 1 || has_fitting > 1) {
    return Status::Corruption("OPERB stream flag out of range");
  }
  any_emitted_ = any_emitted != 0;
  if (has_fitting != 0) {
    // Placeholder anchor: DeserializeFrom overwrites the dynamic fields,
    // the constructor re-derives the option-dependent parameters.
    fitting_.emplace(geo::Vec2{}, options_);
    OPERB_RETURN_IF_ERROR(fitting_->DeserializeFrom(in, pos));
  } else {
    fitting_.reset();
  }
  std::uint64_t segment_first = 0;
  std::uint8_t anchor_detached = 0;
  std::uint64_t points_in_segment = 0;
  std::uint64_t active_index = 0;
  std::uint64_t pending_end = 0;
  std::uint64_t covered = 0;
  std::uint64_t next = 0;
  std::uint64_t last = 0;
  if (!serial::GetF64(in, pos, &anchor_pos_.x) ||
      !serial::GetF64(in, pos, &anchor_pos_.y) ||
      !serial::GetU64(in, pos, &segment_first) ||
      !serial::GetU8(in, pos, &anchor_detached) ||
      !serial::GetU64(in, pos, &points_in_segment) ||
      !serial::GetF64(in, pos, &active_pos_.x) ||
      !serial::GetF64(in, pos, &active_pos_.y) ||
      !serial::GetU64(in, pos, &active_index) ||
      !serial::GetF64(in, pos, &ra_unit_.x) ||
      !serial::GetF64(in, pos, &ra_unit_.y)) {
    return Status::Corruption("truncated OPERB stream state");
  }
  if (anchor_detached > 1) {
    return Status::Corruption("OPERB stream flag out of range");
  }
  OPERB_RETURN_IF_ERROR(traj::DeserializeSegment(in, pos, &pending_));
  if (!serial::GetU64(in, pos, &pending_end) ||
      !serial::GetF64(in, pos, &pending_unit_.x) ||
      !serial::GetF64(in, pos, &pending_unit_.y) ||
      !serial::GetU64(in, pos, &covered) || !serial::GetU64(in, pos, &next) ||
      !serial::GetF64(in, pos, &last_pos_.x) ||
      !serial::GetF64(in, pos, &last_pos_.y) ||
      !serial::GetU64(in, pos, &last)) {
    return Status::Corruption("truncated OPERB stream state");
  }
  segment_first_index_ = static_cast<std::size_t>(segment_first);
  anchor_detached_ = anchor_detached != 0;
  points_in_segment_ = static_cast<std::size_t>(points_in_segment);
  active_index_ = static_cast<std::size_t>(active_index);
  pending_end_index_ = static_cast<std::size_t>(pending_end);
  covered_index_ = static_cast<std::size_t>(covered);
  next_index_ = static_cast<std::size_t>(next);
  last_index_ = static_cast<std::size_t>(last);
  return Status::OK();
}

void OperbStream::Finish() {
  if (mode_ == Mode::kIdle || mode_ == Mode::kFinished) {
    mode_ = Mode::kFinished;
    return;
  }
  if (mode_ == Mode::kAbsorb) {
    EmitPending();  // transitions to kSeek with an empty segment
  }
  if (covered_index_ > segment_first_index_) {
    // The open segment has content.
    traj::RepresentedSegment s;
    s.start = anchor_pos_;
    s.first_index = segment_first_index_;
    s.last_index = covered_index_;
    s.start_is_patch = anchor_detached_;
    if (mode_ == Mode::kExtend) {
      s.end = active_pos_;
      s.end_is_patch = (covered_index_ != active_index_);
    } else {
      // kSeek: every consumed point is within the activation threshold
      // (<= zeta) of the anchor, so any line through the anchor bounds
      // them; end at the last sample for an exact tail.
      s.end = last_pos_;
      s.end_is_patch = false;
    }
    Emit(s);
  }
  // Closing segment: guarantee the representation ends at the last sample.
  if (options_.emit_closing_segment && any_emitted_) {
    const traj::RepresentedSegment tail = last_emitted_;
    if (tail.end_is_patch || tail.last_index != last_index_) {
      traj::RepresentedSegment close;
      close.start = tail.end;
      close.end = last_pos_;
      close.first_index = tail.last_index;
      close.last_index = last_index_;
      close.start_is_patch = tail.end_is_patch;
      close.end_is_patch = false;
      Emit(close);
    }
  }
  mode_ = Mode::kFinished;
}

traj::PiecewiseRepresentation SimplifyOperb(const traj::Trajectory& trajectory,
                                            const OperbOptions& options,
                                            OperbStats* stats) {
  OperbStream stream(options);
  traj::PiecewiseRepresentation out;
  if (trajectory.size() < 2) {
    if (stats != nullptr) *stats = stream.stats();
    return out;
  }
  stream.SetSink(
      [&out](const traj::RepresentedSegment& s) { out.Append(s); });
  stream.Push(std::span<const geo::Point>(trajectory.points()));
  stream.Finish();
  if (stats != nullptr) *stats = stream.stats();
  return out;
}

}  // namespace operb::core
