#include "core/operb.h"

#include <cmath>

#include "common/check.h"
#include "geo/distance.h"

namespace operb::core {

OperbStream::OperbStream(const OperbOptions& options) : options_(options) {
  OPERB_CHECK_MSG(options.Validate().ok(), "invalid OperbOptions");
  // The drift guard is only needed where Theorem 2's proof does not apply:
  // any of the heuristic optimizations (2)-(4), or a non-paper fitting
  // parameterization.
  const bool paper_fitting = options_.step_length_factor == 0.5 &&
                             options_.activation_slack_factor == 0.25;
  guard_engaged_ = options_.strict_bound_guard &&
                   (options_.opt_adjusted_distance ||
                    options_.opt_closer_line || options_.opt_missing_active ||
                    !paper_fitting);
}

void OperbStream::SetSink(traj::SegmentSink sink) {
  OPERB_CHECK_MSG(next_index_ == 0, "SetSink after the first Push");
  sink_ = std::move(sink);
}

std::vector<traj::RepresentedSegment> OperbStream::TakeEmitted() {
  std::vector<traj::RepresentedSegment> out;
  out.swap(emitted_);
  last_take_size_ = out.size();
  return out;
}

void OperbStream::TakeEmitted(std::vector<traj::RepresentedSegment>* out) {
  out->clear();
  out->swap(emitted_);  // emitted_ inherits the caller's old capacity
  last_take_size_ = out->size();
}

void OperbStream::Emit(const traj::RepresentedSegment& s) {
  last_emitted_ = s;
  any_emitted_ = true;
  ++stats_.segments_emitted;
  if (sink_) {
    sink_(s);
    return;
  }
  if (emitted_.capacity() == 0) {
    // First growth (or a TakeEmitted() that moved the storage out): size
    // from the emission history instead of libstdc++'s 1-element start — a
    // polling caller tends to repeat batches of ~last_take_size_ segments.
    emitted_.reserve(std::max<std::size_t>(8, last_take_size_));
  }
  emitted_.push_back(s);
}

void OperbStream::Push(const geo::Point& p) {
  OPERB_DCHECK(mode_ != Mode::kFinished);
  const geo::Vec2 pos = p.pos();
  const std::size_t idx = next_index_++;
  last_pos_ = pos;
  last_index_ = idx;
  ++stats_.points_processed;

  if (mode_ == Mode::kIdle) {
    // The very first point anchors the first segment.
    StartSegment(pos, idx, /*detached=*/false);
    covered_index_ = idx;
    mode_ = Mode::kSeek;
    return;
  }
  ProcessPoint(pos, idx);
}

void OperbStream::Push(std::span<const geo::Point> points) {
  for (const geo::Point& p : points) Push(p);
}

void OperbStream::ProcessPoint(geo::Vec2 pos, std::size_t idx) {
  // A point may be re-dispatched once: when it breaks the current segment
  // it continues against the freshly started one (still O(1) per point).
  for (int pass = 0; pass < 3; ++pass) {
    switch (mode_) {
      case Mode::kAbsorb: {
        // Optimization (5): the pending segment keeps representing points
        // while they stay within zeta of its line.
        const double d =
            geo::PointToLineDistanceDir(pos, pending_.start, pending_unit_);
        if (options_.opt_absorb && d <= options_.zeta) {
          pending_.last_index = idx;
          covered_index_ = idx;
          ++stats_.points_absorbed;
          return;
        }
        EmitPending();
        continue;  // re-dispatch against the new segment (kSeek)
      }
      case Mode::kSeek: {
        const double r = geo::Distance(pos, anchor_pos_);
        ++points_in_segment_;
        // Optimization (1): postpone the first active point to radius
        // > zeta (default threshold: the activation slack, zeta/4). Every
        // point skipped here is within the threshold of the anchor, hence
        // within zeta of any line through it.
        const double threshold =
            options_.opt_first_active
                ? options_.zeta
                : options_.zeta * options_.activation_slack_factor;
        if (r <= threshold) {
          covered_index_ = idx;
          // A pre-direction point sits within `r` of any line through the
          // anchor; charge it to the drift budget.
          fitting_->NoteDriftDistance(r);
          if (points_in_segment_ >= options_.max_points_per_segment) {
            ++stats_.cap_breaks;
            // Degenerate cap break while seeking: close at the current
            // point (all consumed points are within `threshold` of the
            // anchor, so the bound holds for any segment through it).
            SetActive(pos, idx, r);
            covered_index_ = idx;
            mode_ = Mode::kExtend;
            BreakSegment();
            return;
          }
          return;
        }
        // First active point: case (2) of the fitting function.
        fitting_->Activate(pos);
        SetActive(pos, idx, r);
        covered_index_ = idx;
        mode_ = Mode::kExtend;
        return;
      }
      case Mode::kExtend: {
        const double r = geo::Distance(pos, anchor_pos_);
        if (points_in_segment_ + 1 >= options_.max_points_per_segment) {
          ++stats_.cap_breaks;
          BreakSegment();
          continue;
        }
        const bool is_active = fitting_->IsActive(r);
        const double offset = fitting_->SignedOffset(pos);
        const double d_line = std::fabs(offset);

        // The paper's distance condition d(P, L) <= zeta/2, or — with
        // optimization (2) — the relaxed d+max + d-max <= zeta.
        bool distance_ok;
        if (options_.opt_adjusted_distance) {
          const double tentative_plus =
              std::max(offset > 0.0 ? offset : 0.0, fitting_->d_plus_max());
          const double tentative_minus =
              std::max(offset < 0.0 ? -offset : 0.0, fitting_->d_minus_max());
          distance_ok = (tentative_plus + tentative_minus) <= options_.zeta;
        } else {
          distance_ok = d_line <= options_.zeta / 2.0;
        }

        if (!is_active) {
          // Inactive points must additionally stay within zeta of the
          // candidate segment R_a = anchor -> active (they will be
          // represented by it if the segment breaks here or later).
          const double d_ra =
              geo::PointToLineDistanceDir(pos, anchor_pos_, ra_unit_);
          if (distance_ok && d_ra <= options_.zeta) {
            if (guard_engaged_) {
              fitting_->ObservePoint(pos);
            } else {
              fitting_->ObserveOffset(offset);
            }
            covered_index_ = idx;
            ++points_in_segment_;
            return;
          }
          BreakSegment();
          continue;
        }
        // Active candidate: combined when the distance condition holds
        // and (when the heuristic optimizations are in play) the drift
        // guard proves every represented point stays within zeta of the
        // would-be chord.
        if (distance_ok) {
          const FittingFunction::ActivationPlan plan =
              fitting_->PlanActivation(pos, r);
          if (!guard_engaged_ || fitting_->ActivationKeepsBound(plan)) {
            // d+-max per the paper uses the distance to L_{i-1} (before
            // the rotation); the drift budgets take the post-rotation
            // position.
            fitting_->ObserveOffset(offset);
            fitting_->ApplyActivation(pos, plan);
            if (guard_engaged_) fitting_->ObservePoint(pos);
            SetActive(pos, idx, r);
            covered_index_ = idx;
            ++points_in_segment_;
            return;
          }
        }
        BreakSegment();
        continue;
      }
      case Mode::kIdle:
      case Mode::kFinished:
        OPERB_CHECK_MSG(false, "ProcessPoint in invalid mode");
    }
  }
  OPERB_CHECK_MSG(false, "point re-dispatched more than twice");
}

void OperbStream::SetActive(geo::Vec2 pos, std::size_t idx, double radius) {
  active_pos_ = pos;
  active_index_ = idx;
  // radius > zeta/4 whenever a point becomes active, so the division is
  // safe except for the degenerate cap-break-while-seeking path.
  ra_unit_ = radius > 0.0 ? (pos - anchor_pos_) / radius : geo::Vec2{1.0, 0.0};
}

void OperbStream::BreakSegment() {
  // The segment anchor -> active is determined; it represents everything
  // consumed so far ([segment_first_index_, covered_index_]).
  pending_.start = anchor_pos_;
  pending_.end = active_pos_;
  pending_.first_index = segment_first_index_;
  pending_.last_index = covered_index_;
  pending_.start_is_patch = anchor_detached_;
  pending_.end_is_patch = false;  // finalized in EmitPending
  pending_end_index_ = active_index_;
  const geo::Vec2 d = pending_.end - pending_.start;
  const double len = d.Norm();
  pending_unit_ = len > 0.0 ? d / len : geo::Vec2{1.0, 0.0};
  mode_ = Mode::kAbsorb;
}

void OperbStream::EmitPending() {
  pending_.end_is_patch = (pending_.last_index != pending_end_index_);
  Emit(pending_);
  StartSegment(pending_.end, pending_.last_index, pending_.end_is_patch);
  mode_ = Mode::kSeek;
}

void OperbStream::StartSegment(geo::Vec2 anchor, std::size_t chain_index,
                               bool detached) {
  anchor_pos_ = anchor;
  segment_first_index_ = chain_index;
  anchor_detached_ = detached;
  points_in_segment_ = 1;  // the anchor itself
  fitting_.emplace(anchor, options_);
}

void OperbStream::Reset() {
  mode_ = Mode::kIdle;
  emitted_.clear();  // keeps capacity for the next trajectory
  last_take_size_ = 0;
  stats_ = OperbStats{};
  last_emitted_ = traj::RepresentedSegment{};
  any_emitted_ = false;
  fitting_.reset();
  anchor_pos_ = geo::Vec2{};
  segment_first_index_ = 0;
  anchor_detached_ = false;
  points_in_segment_ = 0;
  active_pos_ = geo::Vec2{};
  active_index_ = 0;
  ra_unit_ = geo::Vec2{};
  pending_ = traj::RepresentedSegment{};
  pending_end_index_ = 0;
  pending_unit_ = geo::Vec2{};
  covered_index_ = 0;
  next_index_ = 0;
  last_pos_ = geo::Vec2{};
  last_index_ = 0;
}

void OperbStream::Finish() {
  if (mode_ == Mode::kIdle || mode_ == Mode::kFinished) {
    mode_ = Mode::kFinished;
    return;
  }
  if (mode_ == Mode::kAbsorb) {
    EmitPending();  // transitions to kSeek with an empty segment
  }
  if (covered_index_ > segment_first_index_) {
    // The open segment has content.
    traj::RepresentedSegment s;
    s.start = anchor_pos_;
    s.first_index = segment_first_index_;
    s.last_index = covered_index_;
    s.start_is_patch = anchor_detached_;
    if (mode_ == Mode::kExtend) {
      s.end = active_pos_;
      s.end_is_patch = (covered_index_ != active_index_);
    } else {
      // kSeek: every consumed point is within the activation threshold
      // (<= zeta) of the anchor, so any line through the anchor bounds
      // them; end at the last sample for an exact tail.
      s.end = last_pos_;
      s.end_is_patch = false;
    }
    Emit(s);
  }
  // Closing segment: guarantee the representation ends at the last sample.
  if (options_.emit_closing_segment && any_emitted_) {
    const traj::RepresentedSegment tail = last_emitted_;
    if (tail.end_is_patch || tail.last_index != last_index_) {
      traj::RepresentedSegment close;
      close.start = tail.end;
      close.end = last_pos_;
      close.first_index = tail.last_index;
      close.last_index = last_index_;
      close.start_is_patch = tail.end_is_patch;
      close.end_is_patch = false;
      Emit(close);
    }
  }
  mode_ = Mode::kFinished;
}

traj::PiecewiseRepresentation SimplifyOperb(const traj::Trajectory& trajectory,
                                            const OperbOptions& options,
                                            OperbStats* stats) {
  OperbStream stream(options);
  traj::PiecewiseRepresentation out;
  if (trajectory.size() < 2) {
    if (stats != nullptr) *stats = stream.stats();
    return out;
  }
  stream.SetSink(
      [&out](const traj::RepresentedSegment& s) { out.Append(s); });
  stream.Push(std::span<const geo::Point>(trajectory.points()));
  stream.Finish();
  if (stats != nullptr) *stats = stream.stats();
  return out;
}

}  // namespace operb::core
