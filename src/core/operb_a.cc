#include "core/operb_a.h"

#include "common/check.h"
#include "common/serial.h"
#include "core/patch.h"

namespace operb::core {

LazyPatcher::LazyPatcher(const OperbAOptions& options) : options_(options) {
  OPERB_CHECK_MSG(options.Validate().ok(), "invalid OperbAOptions");
}

void LazyPatcher::SetSink(traj::SegmentSink sink) {
  OPERB_CHECK_MSG(!x_.has_value() && emitted_.empty(),
                  "SetSink after the first Accept");
  sink_ = std::move(sink);
}

std::vector<traj::RepresentedSegment> LazyPatcher::TakeEmitted() {
  std::vector<traj::RepresentedSegment> out;
  out.swap(emitted_);
  return out;
}

void LazyPatcher::TakeEmitted(std::vector<traj::RepresentedSegment>* out) {
  out->clear();
  out->swap(emitted_);
}

void LazyPatcher::Accept(traj::RepresentedSegment segment) {
  if (IsAnomalous(segment)) ++anomalous_segments_;

  if (!x_.has_value()) {
    x_ = segment;
    return;
  }
  if (!y_.has_value()) {
    if (options_.enable_patching && IsAnomalous(segment)) {
      // Park the anomalous segment until its successor determines whether
      // a patch point exists.
      y_ = segment;
      return;
    }
    Emit(*x_);
    x_ = segment;
    return;
  }

  // x_ = R_{i-1}, y_ = anomalous R_i, segment = R_{i+1}.
  const std::optional<geo::Vec2> g =
      ComputePatchPoint(*x_, segment, options_);
  if (g.has_value()) {
    ++patches_applied_;
    // Extend R_{i-1} along its own line to G; R_{i+1} now starts from G on
    // its own line. The eliminated anomalous segment's two points split
    // between the neighbours — its start (== R_{i-1}'s old end) lies on
    // R_{i-1}'s line and its end (== R_{i+1}'s start) on R_{i+1}'s line —
    // so neither index range changes and no error is introduced
    // (Section 5.2). The junction leaves a one-index gap between the
    // neighbours' covered ranges, which the representation validator and
    // the metrics recognize via the patch flags.
    x_->end = *g;
    x_->end_is_patch = true;
    Emit(*x_);
    segment.start = *g;
    segment.start_is_patch = true;
    x_ = segment;
    y_.reset();
    return;
  }
  // No patch: release the buffer in order.
  Emit(*x_);
  Emit(*y_);
  y_.reset();
  x_ = segment;
}

void LazyPatcher::Finish() {
  if (x_.has_value()) Emit(*x_);
  if (y_.has_value()) Emit(*y_);
  x_.reset();
  y_.reset();
}

void LazyPatcher::Reset() {
  emitted_.clear();
  x_.reset();
  y_.reset();
  anomalous_segments_ = 0;
  patches_applied_ = 0;
}

void LazyPatcher::Serialize(std::vector<std::uint8_t>* out) const {
  serial::PutU32(static_cast<std::uint32_t>(emitted_.size()), out);
  for (const traj::RepresentedSegment& s : emitted_) {
    traj::SerializeSegment(s, out);
  }
  serial::PutU8(x_.has_value() ? 1 : 0, out);
  if (x_.has_value()) traj::SerializeSegment(*x_, out);
  serial::PutU8(y_.has_value() ? 1 : 0, out);
  if (y_.has_value()) traj::SerializeSegment(*y_, out);
  serial::PutU64(anomalous_segments_, out);
  serial::PutU64(patches_applied_, out);
}

Status LazyPatcher::Deserialize(std::span<const std::uint8_t> in,
                                std::size_t* pos) {
  std::uint32_t emitted_count = 0;
  if (!serial::GetU32(in, pos, &emitted_count)) {
    return Status::Corruption("truncated lazy-patcher state");
  }
  emitted_.clear();
  emitted_.reserve(emitted_count);
  for (std::uint32_t i = 0; i < emitted_count; ++i) {
    traj::RepresentedSegment s;
    OPERB_RETURN_IF_ERROR(traj::DeserializeSegment(in, pos, &s));
    emitted_.push_back(s);
  }
  for (std::optional<traj::RepresentedSegment>* slot : {&x_, &y_}) {
    std::uint8_t present = 0;
    if (!serial::GetU8(in, pos, &present)) {
      return Status::Corruption("truncated lazy-patcher state");
    }
    if (present > 1) {
      return Status::Corruption("lazy-patcher flag out of range");
    }
    if (present != 0) {
      traj::RepresentedSegment s;
      OPERB_RETURN_IF_ERROR(traj::DeserializeSegment(in, pos, &s));
      *slot = s;
    } else {
      slot->reset();
    }
  }
  std::uint64_t anomalous = 0;
  std::uint64_t patches = 0;
  if (!serial::GetU64(in, pos, &anomalous) ||
      !serial::GetU64(in, pos, &patches)) {
    return Status::Corruption("truncated lazy-patcher state");
  }
  anomalous_segments_ = static_cast<std::size_t>(anomalous);
  patches_applied_ = static_cast<std::size_t>(patches);
  return Status::OK();
}

OperbAStream::OperbAStream(const OperbAOptions& options)
    : options_(options), inner_(options.base), patcher_(options) {
  // Segments flow inner -> patcher without touching inner's buffer: the
  // old drain-after-every-Push pattern paid a vector move per drained
  // batch, this pays one indirect call per *determined segment*.
  inner_.SetSink(
      [this](const traj::RepresentedSegment& s) { patcher_.Accept(s); });
}

void OperbAStream::SetSink(traj::SegmentSink sink) {
  patcher_.SetSink(std::move(sink));
}

void OperbAStream::Push(const geo::Point& p) { inner_.Push(p); }

void OperbAStream::Push(std::span<const geo::Point> points) {
  inner_.Push(points);
}

void OperbAStream::Finish() {
  inner_.Finish();
  patcher_.Finish();
}

void OperbAStream::Reset() {
  inner_.Reset();
  patcher_.Reset();
}

std::vector<traj::RepresentedSegment> OperbAStream::TakeEmitted() {
  return patcher_.TakeEmitted();
}

void OperbAStream::TakeEmitted(std::vector<traj::RepresentedSegment>* out) {
  patcher_.TakeEmitted(out);
}

OperbAStats OperbAStream::stats() const {
  OperbAStats s;
  s.base = inner_.stats();
  s.anomalous_segments = patcher_.anomalous_segments();
  s.patches_applied = patcher_.patches_applied();
  return s;
}

void OperbAStream::Serialize(std::vector<std::uint8_t>* out) const {
  inner_.Serialize(out);
  patcher_.Serialize(out);
}

Status OperbAStream::Deserialize(std::span<const std::uint8_t> in,
                                 std::size_t* pos) {
  OPERB_RETURN_IF_ERROR(inner_.Deserialize(in, pos));
  return patcher_.Deserialize(in, pos);
}

traj::PiecewiseRepresentation SimplifyOperbA(
    const traj::Trajectory& trajectory, const OperbAOptions& options,
    OperbAStats* stats) {
  OperbAStream stream(options);
  traj::PiecewiseRepresentation out;
  if (trajectory.size() < 2) {
    if (stats != nullptr) *stats = stream.stats();
    return out;
  }
  stream.SetSink(
      [&out](const traj::RepresentedSegment& s) { out.Append(s); });
  stream.Push(std::span<const geo::Point>(trajectory.points()));
  stream.Finish();
  if (stats != nullptr) *stats = stream.stats();
  return out;
}

}  // namespace operb::core
