#include "core/operb_a.h"

#include "common/check.h"
#include "core/patch.h"

namespace operb::core {

LazyPatcher::LazyPatcher(const OperbAOptions& options) : options_(options) {
  OPERB_CHECK_MSG(options.Validate().ok(), "invalid OperbAOptions");
}

std::vector<traj::RepresentedSegment> LazyPatcher::TakeEmitted() {
  std::vector<traj::RepresentedSegment> out;
  out.swap(emitted_);
  return out;
}

void LazyPatcher::Accept(traj::RepresentedSegment segment) {
  if (IsAnomalous(segment)) ++anomalous_segments_;

  if (!x_.has_value()) {
    x_ = segment;
    return;
  }
  if (!y_.has_value()) {
    if (options_.enable_patching && IsAnomalous(segment)) {
      // Park the anomalous segment until its successor determines whether
      // a patch point exists.
      y_ = segment;
      return;
    }
    Emit(*x_);
    x_ = segment;
    return;
  }

  // x_ = R_{i-1}, y_ = anomalous R_i, segment = R_{i+1}.
  const std::optional<geo::Vec2> g =
      ComputePatchPoint(*x_, segment, options_);
  if (g.has_value()) {
    ++patches_applied_;
    // Extend R_{i-1} along its own line to G; R_{i+1} now starts from G on
    // its own line. The eliminated anomalous segment's two points split
    // between the neighbours — its start (== R_{i-1}'s old end) lies on
    // R_{i-1}'s line and its end (== R_{i+1}'s start) on R_{i+1}'s line —
    // so neither index range changes and no error is introduced
    // (Section 5.2). The junction leaves a one-index gap between the
    // neighbours' covered ranges, which the representation validator and
    // the metrics recognize via the patch flags.
    x_->end = *g;
    x_->end_is_patch = true;
    Emit(*x_);
    segment.start = *g;
    segment.start_is_patch = true;
    x_ = segment;
    y_.reset();
    return;
  }
  // No patch: release the buffer in order.
  Emit(*x_);
  Emit(*y_);
  y_.reset();
  x_ = segment;
}

void LazyPatcher::Finish() {
  if (x_.has_value()) Emit(*x_);
  if (y_.has_value()) Emit(*y_);
  x_.reset();
  y_.reset();
}

OperbAStream::OperbAStream(const OperbAOptions& options)
    : options_(options), inner_(options.base), patcher_(options) {}

void OperbAStream::DrainInner() {
  for (traj::RepresentedSegment& s : inner_.TakeEmitted()) {
    patcher_.Accept(s);
  }
}

void OperbAStream::Push(const geo::Point& p) {
  inner_.Push(p);
  DrainInner();
}

void OperbAStream::Finish() {
  inner_.Finish();
  DrainInner();
  patcher_.Finish();
}

std::vector<traj::RepresentedSegment> OperbAStream::TakeEmitted() {
  return patcher_.TakeEmitted();
}

OperbAStats OperbAStream::stats() const {
  OperbAStats s;
  s.base = inner_.stats();
  s.anomalous_segments = patcher_.anomalous_segments();
  s.patches_applied = patcher_.patches_applied();
  return s;
}

traj::PiecewiseRepresentation SimplifyOperbA(
    const traj::Trajectory& trajectory, const OperbAOptions& options,
    OperbAStats* stats) {
  OperbAStream stream(options);
  traj::PiecewiseRepresentation out;
  if (trajectory.size() < 2) {
    if (stats != nullptr) *stats = stream.stats();
    return out;
  }
  for (const geo::Point& p : trajectory) stream.Push(p);
  stream.Finish();
  for (traj::RepresentedSegment& s : stream.TakeEmitted()) out.Append(s);
  if (stats != nullptr) *stats = stream.stats();
  return out;
}

}  // namespace operb::core
