#ifndef OPERB_CORE_FITTING_H_
#define OPERB_CORE_FITTING_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/options.h"
#include "geo/distance.h"
#include "geo/point.h"
#include "geo/segment.h"

namespace operb::core {

/// The paper's fitting function F (Section 4.1), maintained incrementally
/// for one candidate segment.
///
/// Given the segment's start point Ps (the anchor) and the error bound
/// zeta, the fitting function evolves a directed line segment
/// L = (Ps, |L|, theta) that fits all points processed so far, enabling
/// the *local* distance check: each new point is compared against L only.
///
/// Space is O(1): anchor, length, angle, the previous active zone index
/// and the two side maxima — nothing grows with the number of points.
///
/// The three cases of F map onto this API as follows. Zone membership and
/// the inactive test (case (1), the identity update) are queried with
/// ZoneIndex() / IsActive(); a point that is active is applied with
/// Activate(), which performs case (2) (first activation: L takes R's
/// angle) or case (3) (rotate L toward the point by
/// f * arcsin(d / (j*zeta/2)) / j).
class FittingFunction {
 public:
  /// `options` supplies zeta and the optimization flags that alter F
  /// (opt_closer_line / opt_missing_active); the object keeps a copy of
  /// the scalar parameters only.
  FittingFunction(geo::Vec2 anchor, const OperbOptions& options);

  /// Zone index j = ceil(|R|*2/zeta - 0.5) of a radius |R| from the
  /// anchor; zone Z_j covers radii in (j*zeta/2 - zeta/4, j*zeta/2 + zeta/4].
  std::int64_t ZoneIndex(double radius) const;

  /// The paper's activity test: a point at `radius` from the anchor is
  /// active iff |R| - |L| > zeta/4.
  bool IsActive(double radius) const { return radius - length_ > slack_; }

  /// True until the first activation (|L| == 0, the state in which case
  /// (2) applies).
  bool IsUndirected() const { return length_ == 0.0; }

  /// Distance from `p` to the current line L (through the anchor with
  /// angle theta). Before the first activation this is the distance to
  /// the anchor itself.
  double DistanceToLine(geo::Vec2 p) const;

  /// Signed perpendicular offset of `p` from L (positive left of L's
  /// direction). Meaningless before the first activation.
  double SignedOffset(geo::Vec2 p) const;

  /// Records a point's offset into the per-side maxima d+max / d-max
  /// (used by optimizations (2) and (3)). Call for every checked point.
  void ObserveOffset(double signed_offset);

  /// Sum d+max + d-max of the side maxima (optimization (2)'s bound).
  double SideMaxSum() const { return d_plus_max_ + d_minus_max_; }

  /// Historical per-side maxima of |signed offset| (optimizations (2)/(3)).
  double d_plus_max() const { return d_plus_max_; }
  double d_minus_max() const { return d_minus_max_; }

  /// Everything case (2)/(3) would do to the state for point `p`,
  /// precomputed without mutating. `rotation` is the absolute angle step
  /// and `sign` its direction (the paper's f).
  struct ActivationPlan {
    std::int64_t zone = 0;
    double new_length = 0.0;
    double distance = 0.0;
    double rotation = 0.0;
    int sign = 1;
    bool first_activation = false;
  };

  /// Precondition: IsActive(|p - anchor|). The overload taking `radius`
  /// avoids recomputing |p - anchor| when the caller already has it.
  ActivationPlan PlanActivation(geo::Vec2 p) const;
  ActivationPlan PlanActivation(geo::Vec2 p, double radius) const;

  /// Applies F to an *active* point `p` (cases (2)/(3)). Precondition:
  /// IsActive(|p - anchor|).
  void Activate(geo::Vec2 p);

  /// Applies a previously computed plan (avoids recomputing the math when
  /// the caller already planned the activation for its guard check).
  void ApplyActivation(geo::Vec2 p, const ActivationPlan& plan);

  /// Drift-budget guard (see DESIGN.md "Error-bound guard").
  ///
  /// Three O(1) budgets conservatively bound the distance of every point
  /// consumed by this segment to the *current* line L:
  ///  - `drift_plus` / `drift_minus`: max distance of points with a
  ///    non-negative projection onto L (ahead of the anchor), per side.
  ///    Rotating L by `m` toward one side can only increase the opposite
  ///    side's distances, by at most m * (|L| + zeta/4).
  ///  - `drift_back`: max *radius* of points behind the anchor — their
  ///    distance to any line through the anchor never exceeds their
  ///    radius, so rotations cost them nothing.
  double drift_bound() const {
    return std::max(std::max(drift_plus_, drift_minus_), drift_back_);
  }

  /// Records a consumed point whose position relative to the current line
  /// is unknown (pre-direction points): its radius bounds its distance to
  /// every line through the anchor, so it charges the rotation-free
  /// budget.
  void NoteDriftDistance(double radius) {
    if (radius > drift_back_) drift_back_ = radius;
  }

  /// Records a consumed point into the side maxima *and* the drift
  /// budgets (supersedes ObserveOffset when the guard is active).
  void ObservePoint(geo::Vec2 p);

  /// ObservePoint for the batched fit loop: applies the same state
  /// updates from values the caller already holds. Precondition (the
  /// bit-identity contract): `signed_offset` == dir().Cross(p - anchor()),
  /// `dot` == dir().Dot(p - anchor()) and `radius` == |p - anchor()|,
  /// computed with exactly those expressions — the geo::simd batch
  /// kernels produce them per element (see DESIGN.md §12).
  void ObservePointPrecomputed(double signed_offset, double dot,
                               double radius) {
    ObserveOffset(signed_offset);
    if (dot >= 0.0) {
      if (signed_offset >= 0.0) {
        drift_plus_ = std::max(drift_plus_, signed_offset);
      } else {
        drift_minus_ = std::max(drift_minus_, -signed_offset);
      }
    } else {
      drift_back_ = std::max(drift_back_, radius);
    }
  }

  /// True when executing `plan` keeps every consumed point provably within
  /// zeta of the would-be output chord anchor->p: the per-side drift after
  /// the rotation plus the chord-vs-line divergence stays under zeta.
  bool ActivationKeepsBound(const ActivationPlan& plan) const;

  geo::Vec2 anchor() const { return anchor_; }
  double length() const { return length_; }
  /// The activity slack (paper: zeta/4) — IsActive()'s threshold.
  double slack() const { return slack_; }
  /// Individual drift budgets (the batched fit loop freezes them into
  /// geo::simd::ExtendAcceptParams; drift_bound() is their max).
  double drift_plus() const { return drift_plus_; }
  double drift_minus() const { return drift_minus_; }
  double drift_back() const { return drift_back_; }
  /// Cached unit direction of L (== FromAngle(theta_) for the internal,
  /// unnormalized theta_). Meaningful once directed; {1, 0} before.
  geo::Vec2 dir() const { return dir_; }
  /// L.theta in [0, 2*pi). Stored unnormalized internally (per-segment
  /// rotation is bounded, and skipping the fmod keeps the activation path
  /// cheap); normalized on read.
  double theta() const { return geo::NormalizeAngle2Pi(theta_); }
  geo::AnchoredLine line() const { return {anchor_, length_, theta()}; }

  /// Zone index of the last activation (case (2)/(3)); -1 before any.
  std::int64_t last_active_zone() const { return last_active_zone_; }

  /// The paper's sign function f: +1 when the included angle
  /// delta = R.theta - L.theta (normalized into (-2pi, 2pi)) falls in
  /// (-2pi, -3pi/2], [-pi, -pi/2], [0, pi/2] or [pi, 3pi/2), else -1.
  static int SignFunction(double delta);

  /// Appends the dynamic state (anchor, length, unnormalized theta, the
  /// cached direction, zone index, side maxima and drift budgets) as
  /// byte-stable little-endian fields. The parameters derived from
  /// OperbOptions are *not* written — DeserializeFrom runs on an instance
  /// constructed with the same options, which is what makes a restored
  /// stream bit-identical: `dir_` in particular is the cached unit vector
  /// of the *unnormalized* theta_ and must round-trip exactly, not be
  /// recomputed.
  void SerializeTo(std::vector<std::uint8_t>* out) const;

  /// Overwrites the dynamic state from `in`, advancing `*pos`.
  /// Corruption on truncation.
  Status DeserializeFrom(std::span<const std::uint8_t> in, std::size_t* pos);

 private:
  void SetTheta(double theta) {
    theta_ = theta;
    dir_ = geo::Vec2::FromAngle(theta);
  }

  geo::Vec2 anchor_;
  double zeta_;
  /// Zone width (the fitting function's step length; paper: zeta/2).
  double step_width_;
  /// Half a zone width — the radius slop of a zone member.
  double half_width_;
  /// Activation slack (paper: zeta/4).
  double slack_;
  /// Max distance from the anchor a consumed point can have beyond |L|.
  double reach_slop_;
  bool opt_closer_line_;
  bool opt_missing_active_;

  double length_ = 0.0;
  double theta_ = 0.0;
  /// Unit vector of theta_, cached — the distance/offset kernels run per
  /// input point and must not pay cos/sin each time.
  geo::Vec2 dir_{1.0, 0.0};
  std::int64_t last_active_zone_ = -1;
  double d_plus_max_ = 0.0;
  double d_minus_max_ = 0.0;
  double drift_plus_ = 0.0;
  double drift_minus_ = 0.0;
  double drift_back_ = 0.0;
};

}  // namespace operb::core

#endif  // OPERB_CORE_FITTING_H_
