#ifndef OPERB_CORE_PATCH_H_
#define OPERB_CORE_PATCH_H_

#include <optional>

#include "core/options.h"
#include "geo/point.h"
#include "traj/piecewise.h"

namespace operb::core {

/// Computes the patch point G w.r.t. an anomalous segment lying between
/// `prev` (the paper's R_{i-1}) and `next` (R_{i+1}), per Section 5.1:
///
///  (1) G lies on the line of `prev` (same direction from its start) and
///      on the line of `next` (ahead of G, same direction);
///  (2) |Ps G| >= |Ps P_{s+i-1}| - zeta/2 — G may retract at most zeta/2
///      behind prev's end, otherwise extends it forward;
///  (3) the included angle from prev to next has absolute normalized value
///      at most pi - gamma_m.
///
/// Returns nullopt when any condition fails (including parallel or
/// degenerate lines, and the optional max-extension guard).
std::optional<geo::Vec2> ComputePatchPoint(
    const traj::RepresentedSegment& prev,
    const traj::RepresentedSegment& next, const OperbAOptions& options);

}  // namespace operb::core

#endif  // OPERB_CORE_PATCH_H_
