#ifndef OPERB_CORE_OPERB_H_
#define OPERB_CORE_OPERB_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/fitting.h"
#include "core/options.h"
#include "geo/point.h"
#include "traj/piecewise.h"
#include "traj/trajectory.h"

namespace operb::core {

/// Counters describing one OPERB run (all O(1) state).
struct OperbStats {
  std::size_t points_processed = 0;
  std::size_t segments_emitted = 0;
  /// Points consumed by optimization (5) after their segment was
  /// determined.
  std::size_t points_absorbed = 0;
  /// Segment breaks forced by the 4x10^5 per-segment cap.
  std::size_t cap_breaks = 0;
};

/// One-pass streaming OPERB (Section 4.3 with the Section 4.4
/// optimizations).
///
/// Usage (zero-allocation sink path — preferred):
///
///   OperbStream stream(OperbOptions::Optimized(40.0));
///   stream.SetSink([](const traj::RepresentedSegment& seg) { Send(seg); });
///   for (const geo::Point& p : samples) stream.Push(p);   // or Push(span)
///   stream.Finish();
///
/// Usage (buffered path):
///
///   OperbStream stream(OperbOptions::Optimized(40.0));
///   std::vector<traj::RepresentedSegment> batch;
///   for (const geo::Point& p : samples) {
///     stream.Push(p);
///     stream.TakeEmitted(&batch);   // reuses `batch`'s capacity
///     for (const auto& seg : batch) Send(seg);
///   }
///   stream.Finish();
///   stream.TakeEmitted(&batch);
///   for (const auto& seg : batch) Send(seg);
///
/// Each pushed point is examined once (one distance check against the
/// fitted line L plus one against the current candidate segment R_a),
/// giving O(n) total time and O(1) working state — the properties
/// Theorem 5 claims. Segments become available as soon as they are
/// determined, so a sensor can transmit them immediately.
///
/// Deviations from the paper's pseudocode (documented in DESIGN.md):
///  - Figure 7 line 3 also updates P_e (required for Example 5's output);
///  - when the input ends on trailing inactive points, a closing segment
///    to the final sample is appended unless
///    `options.emit_closing_segment` is false.
class OperbStream {
 public:
  /// Precondition: options.Validate().ok().
  explicit OperbStream(const OperbOptions& options);

  /// Installs the zero-allocation emission path: every determined segment
  /// is handed to `sink` immediately instead of being buffered in
  /// emitted(). With a sink installed, steady-state Push() performs no
  /// heap allocation. Must be called before the first Push(); passing an
  /// empty function restores the buffered path.
  void SetSink(traj::SegmentSink sink);

  /// Feeds the next trajectory point. Timestamps must be strictly
  /// increasing (not re-validated here; see traj::StreamCleaner).
  void Push(const geo::Point& p);

  /// Feeds a batch of points. Bit-identical to point-wise Push over the
  /// same span, but runs the three "point fits, keep going" run types
  /// (absorb, seek, inactive-extend) through the SoA-staged geo::simd
  /// batch kernels with speculative multi-point advance, falling back to
  /// the scalar per-point path at every mode change (DESIGN.md §12).
  void Push(std::span<const geo::Point> points);

  /// Declares end-of-input and flushes the pending state. Push() must not
  /// be called afterwards.
  void Finish();

  /// Returns the stream to its freshly-constructed state so a pooled
  /// instance can simplify another trajectory without reallocation: the
  /// options, the installed sink and the emitted-buffer capacity survive,
  /// everything else is cleared. Performs no heap allocation (the engine's
  /// state pool relies on this; see allocation_test).
  void Reset();

  /// Returns the segments emitted since the previous call and clears the
  /// internal buffer. Prefer the out-parameter overload in loops (it
  /// recycles the caller's capacity) or SetSink() (no buffer at all).
  std::vector<traj::RepresentedSegment> TakeEmitted();

  /// Swap-based TakeEmitted: `*out` receives the emitted segments and the
  /// internal buffer inherits `out`'s old capacity, so a caller polling in
  /// a loop stops paying an allocation per drained batch.
  void TakeEmitted(std::vector<traj::RepresentedSegment>* out);

  /// Emitted-but-not-yet-taken segments (no transfer; always empty while
  /// a sink is installed).
  const std::vector<traj::RepresentedSegment>& emitted() const {
    return emitted_;
  }

  const OperbStats& stats() const { return stats_; }
  const OperbOptions& options() const { return options_; }

  /// Appends the complete dynamic state (mode, counters, current-segment
  /// geometry, the fitting function, pending/undrained segments) as
  /// byte-stable fields — everything Reset() clears, nothing it keeps:
  /// options and the sink are configuration, re-established at
  /// construction. Serializing then Deserializing into a stream built
  /// with identical options resumes mid-trajectory bit-identically.
  void Serialize(std::vector<std::uint8_t>* out) const;

  /// Overwrites the dynamic state from `in`, advancing `*pos`.
  /// Corruption on truncation or out-of-range enum/flag bytes.
  Status Deserialize(std::span<const std::uint8_t> in, std::size_t* pos);

 private:
  enum class Mode {
    kIdle,       ///< nothing pushed yet
    kSeek,       ///< collecting points before the first active point
    kExtend,     ///< fitted line has a direction; combining active points
    kAbsorb,     ///< optimization (5): feeding a determined segment
    kFinished,
  };

  void ProcessPoint(geo::Vec2 pos, std::size_t idx);

  // Batched fast paths of Push(span). Each stages a window of upcoming
  // points into thread-local SoA buffers, runs the geo::simd batch
  // kernels, and consumes the maximal prefix the scalar state machine
  // would have consumed on its cheap no-mode-change path — bit-identical
  // bookkeeping, zero allocations. They return the number of points
  // consumed; the first unconsumed point (if any) is re-processed by the
  // scalar Push, which recomputes the same IEEE values and takes the
  // mode-changing branch.
  //
  // AbsorbRun / SeekRun run to the first non-fitting point or span end.
  // ExtendRun processes one speculation window per call; `*blocked` is
  // set when it stopped at a point that needs the scalar path (active,
  // bound violation, or segment cap) rather than at the window edge.
  std::size_t AbsorbRun(std::span<const geo::Point> points);
  std::size_t SeekRun(std::span<const geo::Point> points);
  std::size_t ExtendRun(std::span<const geo::Point> points, bool* blocked);

  void SetActive(geo::Vec2 pos, std::size_t idx, double radius);
  /// Determines the current segment (anchor -> active point) covering
  /// everything consumed so far and transitions to kAbsorb or restarts.
  void BreakSegment();
  void EmitPending();
  /// Routes one determined segment to the sink (if installed) or the
  /// emitted_ buffer, and tracks it as the latest emission for Finish().
  void Emit(const traj::RepresentedSegment& s);
  /// Starts a fresh segment whose geometric start is `anchor` and whose
  /// covered range chains at `chain_index`.
  void StartSegment(geo::Vec2 anchor, std::size_t chain_index, bool detached);

  OperbOptions options_;
  bool guard_engaged_ = false;
  Mode mode_ = Mode::kIdle;
  traj::SegmentSink sink_;
  std::vector<traj::RepresentedSegment> emitted_;
  /// Size of the last drained batch — sizing hint for emitted_ when the
  /// caller's swap left it without capacity.
  std::size_t last_take_size_ = 0;
  OperbStats stats_;
  /// Latest emission (valid when any_emitted_): Finish() chains its
  /// closing segment off this instead of peeking at emitted_, which the
  /// sink path never fills.
  traj::RepresentedSegment last_emitted_;
  bool any_emitted_ = false;

  // Current segment state.
  std::optional<FittingFunction> fitting_;
  geo::Vec2 anchor_pos_;
  std::size_t segment_first_index_ = 0;
  bool anchor_detached_ = false;
  std::size_t points_in_segment_ = 0;

  // Last active point (valid in kExtend). `ra_unit_` caches the unit
  // direction of the candidate chord R_a = anchor -> active so the
  // per-point distance check is a single cross product.
  geo::Vec2 active_pos_;
  std::size_t active_index_ = 0;
  geo::Vec2 ra_unit_;

  // Determined segment being extended by absorption (valid in kAbsorb);
  // `pending_unit_` caches its line direction.
  traj::RepresentedSegment pending_;
  std::size_t pending_end_index_ = 0;
  geo::Vec2 pending_unit_;

  // Coverage/bookkeeping.
  std::size_t covered_index_ = 0;  ///< last consumed original index
  std::size_t next_index_ = 0;
  geo::Vec2 last_pos_;
  std::size_t last_index_ = 0;

  // Speculation hints for the batched extend path (performance state
  // only — never serialized, has no effect on output). The window grows
  // while inactive runs fill it and shrinks when they end early; after
  // consecutive zero-length runs (activation-dominated traffic) the next
  // 2^streak extend points skip staging entirely, so profiles where
  // every point rotates the line pay (almost) no kernel waste.
  std::uint32_t extend_window_ = kExtendWindowMin;
  std::uint32_t extend_zero_streak_ = 0;
  std::uint32_t extend_skip_ = 0;

  static constexpr std::uint32_t kExtendWindowMin = 8;

 public:
  /// Capacity of the thread-local SoA staging buffers (the maximum batch
  /// the simd kernels see per call); exposed for tests and benches.
  static constexpr std::size_t kStageCapacity = 64;
};

/// Batch convenience wrapper: runs OperbStream over `trajectory`.
/// Precondition: options.Validate().ok().
traj::PiecewiseRepresentation SimplifyOperb(const traj::Trajectory& trajectory,
                                            const OperbOptions& options,
                                            OperbStats* stats = nullptr);

}  // namespace operb::core

#endif  // OPERB_CORE_OPERB_H_
