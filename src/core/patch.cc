#include "core/patch.h"

#include <cmath>

#include "geo/angle.h"
#include "geo/line.h"

namespace operb::core {

std::optional<geo::Vec2> ComputePatchPoint(
    const traj::RepresentedSegment& prev,
    const traj::RepresentedSegment& next, const OperbAOptions& options) {
  const geo::Vec2 dir_prev = prev.end - prev.start;
  const geo::Vec2 dir_next = next.end - next.start;
  const double len_prev = dir_prev.Norm();
  const double len_next = dir_next.Norm();
  if (len_prev == 0.0 || len_next == 0.0) return std::nullopt;

  // Condition (3): the turn from R_{i-1} to R_{i+1} must not approach a
  // U-turn; |normalized included angle| <= pi - gamma_m.
  const double turn =
      geo::AbsoluteTurnAngle(dir_prev.Angle(), dir_next.Angle());
  if (turn > geo::kPi - options.gamma_m) return std::nullopt;

  const auto isect = geo::IntersectLines(prev.start, dir_prev, next.start,
                                         dir_next);
  if (!isect.has_value()) return std::nullopt;

  // Condition (1), directional part: Ps->G must keep prev's direction
  // (G strictly forward of Ps) and G->P_{s+i} must keep next's direction
  // (G at or behind next's start).
  if (isect->s <= 0.0) return std::nullopt;
  if (isect->t > 0.0) return std::nullopt;

  // Condition (2): |Ps G| >= |Ps P_{s+i-1}| - zeta/2, i.e. the retraction
  // of prev's endpoint is at most zeta/2.
  const double zeta = options.base.zeta;
  if (isect->s * len_prev < len_prev - zeta / 2.0) return std::nullopt;

  // Optional practical guard (off by default): bound the forward
  // extension so near-parallel lines do not produce far-away patches.
  if (options.max_patch_extension_zeta > 0.0) {
    const double extension = (isect->s - 1.0) * len_prev;
    if (extension > options.max_patch_extension_zeta * zeta) {
      return std::nullopt;
    }
  }
  return isect->point;
}

}  // namespace operb::core
