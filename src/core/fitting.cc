#include "core/fitting.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/serial.h"
#include "geo/angle.h"

namespace operb::core {

FittingFunction::FittingFunction(geo::Vec2 anchor, const OperbOptions& options)
    : anchor_(anchor),
      zeta_(options.zeta),
      step_width_(options.zeta * options.step_length_factor),
      half_width_(options.zeta * options.step_length_factor / 2.0),
      slack_(options.zeta * options.activation_slack_factor),
      opt_closer_line_(options.opt_closer_line),
      opt_missing_active_(options.opt_missing_active) {
  reach_slop_ = std::max(slack_, half_width_);
}

std::int64_t FittingFunction::ZoneIndex(double radius) const {
  return static_cast<std::int64_t>(std::ceil(radius / step_width_ - 0.5));
}

double FittingFunction::DistanceToLine(geo::Vec2 p) const {
  if (IsUndirected()) return geo::Distance(p, anchor_);
  return geo::PointToLineDistanceDir(p, anchor_, dir_);
}

double FittingFunction::SignedOffset(geo::Vec2 p) const {
  return geo::SignedPointToLineOffsetDir(p, anchor_, dir_);
}

void FittingFunction::ObserveOffset(double signed_offset) {
  if (signed_offset >= 0.0) {
    d_plus_max_ = std::max(d_plus_max_, signed_offset);
  } else {
    d_minus_max_ = std::max(d_minus_max_, -signed_offset);
  }
}

void FittingFunction::ObservePoint(geo::Vec2 p) {
  const geo::Vec2 rel = p - anchor_;
  const geo::Vec2 dir = dir_;
  const double offset = dir.Cross(rel);
  ObserveOffset(offset);
  if (dir.Dot(rel) >= 0.0) {
    // Ahead of the anchor: future rotations move the line under it.
    if (offset >= 0.0) {
      drift_plus_ = std::max(drift_plus_, offset);
    } else {
      drift_minus_ = std::max(drift_minus_, -offset);
    }
  } else {
    // Behind the anchor: its radius bounds the distance to any line
    // through the anchor, rotation-independently.
    drift_back_ = std::max(drift_back_, rel.Norm());
  }
}

int FittingFunction::SignFunction(double delta) {
  // Normalize into (-2pi, 2pi): the difference of two angles in [0, 2pi)
  // already lies there, but activation adds rotations, so re-fold.
  double d = std::fmod(delta, geo::kTwoPi * 2.0);
  if (d >= geo::kTwoPi) d -= geo::kTwoPi;
  if (d <= -geo::kTwoPi) d += geo::kTwoPi;
  const double pi = geo::kPi;
  if ((d > -2.0 * pi && d <= -1.5 * pi) || (d >= -pi && d <= -0.5 * pi) ||
      (d >= 0.0 && d <= 0.5 * pi) || (d >= pi && d < 1.5 * pi)) {
    return 1;
  }
  return -1;
}

FittingFunction::ActivationPlan FittingFunction::PlanActivation(
    geo::Vec2 p) const {
  return PlanActivation(p, (p - anchor_).Norm());
}

FittingFunction::ActivationPlan FittingFunction::PlanActivation(
    geo::Vec2 p, double radius) const {
  const geo::Vec2 r = p - anchor_;
  OPERB_DCHECK(IsActive(radius));
  ActivationPlan plan;
  plan.zone = ZoneIndex(radius);
  OPERB_DCHECK(plan.zone >= 1);
  plan.new_length = static_cast<double>(plan.zone) * step_width_;

  if (IsUndirected()) {
    // Case (2): the first active point fixes L's direction; the chord
    // anchor->p coincides with the new line.
    plan.first_activation = true;
    return plan;
  }

  // Case (3): rotate L toward the new active point.
  const double cross = dir_.Cross(r);
  const double dot = dir_.Dot(r);
  const double d = std::fabs(cross);
  plan.distance = d;
  // Full alignment angle toward the point: rotating this much would put L
  // through p. No optimization may rotate past it. The arcsin argument is
  // d / (j * zeta/2), clamped against float noise.
  const double full_angle = std::asin(std::min(1.0, d / plan.new_length));

  // The paper's sign function f on delta = R.theta - L.theta, evaluated
  // without atan2: its +1 intervals are exactly where sin(delta) and
  // cos(delta) share a sign, i.e. cross * dot >= 0 (see SignFunction; the
  // two agree except on the measure-zero boundary delta = 3pi/2).
  plan.sign = (cross * dot >= 0.0) ? 1 : -1;

  // Optimization (3): use the side's historical max distance dx >= d
  // instead of d, which rotates L closer to the active point.
  double dx = d;
  if (opt_closer_line_) {
    const double side_max = (plan.sign == 1) ? d_plus_max_ : d_minus_max_;
    dx = std::max(dx, std::min(side_max, plan.new_length));
  }
  // Optimization (4): compensate for skipped zones between consecutive
  // active points by scaling the per-zone rotation by delta_j.
  double delta_j = 1.0;
  if (opt_missing_active_ && last_active_zone_ >= 0 &&
      plan.zone - last_active_zone_ > 1) {
    delta_j = static_cast<double>(plan.zone - last_active_zone_);
  }

  const double base_angle =
      dx == d ? full_angle : std::asin(std::min(1.0, dx / plan.new_length));
  const double step_raw = base_angle * delta_j / static_cast<double>(plan.zone);
  plan.rotation = std::min(step_raw, full_angle);
  return plan;
}

bool FittingFunction::ActivationKeepsBound(const ActivationPlan& plan) const {
  if (plan.first_activation) return true;  // chord == line, drift intact
  const double reach = plan.new_length + reach_slop_;
  // Residual angle between the would-be chord anchor->p and the rotated
  // line (the beta_3 term of Lemma 4's proof). The point's radius is at
  // least new_length - zeta/4 (zone membership), bounding the
  // point-to-line angle from above.
  const double min_radius = std::max(1e-300, plan.new_length - half_width_);
  const double chord_angle =
      std::max(0.0, std::asin(std::min(1.0, plan.distance / min_radius)) -
                        plan.rotation);
  // The chord is the current line rotated by rotation + chord_angle
  // toward side `sign` (p lies on it). Forward points on that side only
  // get closer; the opposite side drifts by at most angle * reach. The
  // behind-the-anchor budget never pays for rotations.
  double plus = drift_plus_;
  double minus = drift_minus_;
  const double charge = (plan.rotation + chord_angle) * reach;
  if (plan.sign == 1) {
    minus += charge;
  } else {
    plus += charge;
  }
  return std::max(std::max(plus, minus), drift_back_) <= zeta_;
}

void FittingFunction::ApplyActivation(geo::Vec2 p,
                                      const ActivationPlan& plan) {
  if (plan.first_activation) {
    SetTheta((p - anchor_).Angle());
    length_ = plan.new_length;
    last_active_zone_ = plan.zone;
    return;
  }
  const double reach = plan.new_length + reach_slop_;
  SetTheta(theta_ + static_cast<double>(plan.sign) * plan.rotation);
  length_ = plan.new_length;
  last_active_zone_ = plan.zone;
  if (plan.sign == 1) {
    drift_minus_ += plan.rotation * reach;
  } else {
    drift_plus_ += plan.rotation * reach;
  }
}

void FittingFunction::Activate(geo::Vec2 p) {
  ApplyActivation(p, PlanActivation(p));
}

void FittingFunction::SerializeTo(std::vector<std::uint8_t>* out) const {
  serial::PutF64(anchor_.x, out);
  serial::PutF64(anchor_.y, out);
  serial::PutF64(length_, out);
  serial::PutF64(theta_, out);
  serial::PutF64(dir_.x, out);
  serial::PutF64(dir_.y, out);
  serial::PutU64(static_cast<std::uint64_t>(last_active_zone_), out);
  serial::PutF64(d_plus_max_, out);
  serial::PutF64(d_minus_max_, out);
  serial::PutF64(drift_plus_, out);
  serial::PutF64(drift_minus_, out);
  serial::PutF64(drift_back_, out);
}

Status FittingFunction::DeserializeFrom(std::span<const std::uint8_t> in,
                                        std::size_t* pos) {
  std::uint64_t zone = 0;
  if (!serial::GetF64(in, pos, &anchor_.x) ||
      !serial::GetF64(in, pos, &anchor_.y) ||
      !serial::GetF64(in, pos, &length_) ||
      !serial::GetF64(in, pos, &theta_) ||
      !serial::GetF64(in, pos, &dir_.x) ||
      !serial::GetF64(in, pos, &dir_.y) || !serial::GetU64(in, pos, &zone) ||
      !serial::GetF64(in, pos, &d_plus_max_) ||
      !serial::GetF64(in, pos, &d_minus_max_) ||
      !serial::GetF64(in, pos, &drift_plus_) ||
      !serial::GetF64(in, pos, &drift_minus_) ||
      !serial::GetF64(in, pos, &drift_back_)) {
    return Status::Corruption("truncated fitting-function state");
  }
  last_active_zone_ = static_cast<std::int64_t>(zone);
  return Status::OK();
}

}  // namespace operb::core
