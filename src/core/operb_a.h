#ifndef OPERB_CORE_OPERB_A_H_
#define OPERB_CORE_OPERB_A_H_

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/operb.h"
#include "core/options.h"
#include "geo/point.h"
#include "traj/piecewise.h"
#include "traj/trajectory.h"

namespace operb::core {

/// Counters describing one OPERB-A run.
struct OperbAStats {
  OperbStats base;
  /// The paper's N_a: anomalous line segments produced before
  /// interpolation (segments representing only their own two endpoints).
  std::size_t anomalous_segments = 0;
  /// The paper's N_p: patch points successfully interpolated.
  std::size_t patches_applied = 0;

  /// The paper's patching ratio N_p / N_a (0 when no anomalies occurred).
  double PatchingRatio() const {
    return anomalous_segments == 0
               ? 0.0
               : static_cast<double>(patches_applied) /
                     static_cast<double>(anomalous_segments);
  }
};

/// The lazy output policy of Section 5.2, as a segment-stream filter.
///
/// Determined segments enter via Accept(); at most two are buffered (the
/// candidate predecessor X and an anomalous segment Y awaiting its
/// successor). When the successor S arrives, a patch point G is attempted
/// for Y: on success X is extended to G and emitted, and G->S.end becomes
/// the new pending candidate; otherwise X and Y are emitted unchanged.
class LazyPatcher {
 public:
  explicit LazyPatcher(const OperbAOptions& options);

  /// Installs the zero-allocation emission path (same contract as
  /// OperbStream::SetSink): must be called before the first Accept().
  void SetSink(traj::SegmentSink sink);

  /// Feeds the next determined segment; emitted segments go to the sink,
  /// or accumulate in emitted() when none is installed.
  void Accept(traj::RepresentedSegment segment);

  /// Flushes the buffer (trailing anomalous segments are emitted as-is).
  void Finish();

  /// Clears the lazy buffer and the counters so a pooled instance can
  /// filter another segment stream. Keeps the options, the sink and the
  /// emitted-buffer capacity; performs no heap allocation.
  void Reset();

  std::vector<traj::RepresentedSegment> TakeEmitted();
  void TakeEmitted(std::vector<traj::RepresentedSegment>* out);
  const std::vector<traj::RepresentedSegment>& emitted() const {
    return emitted_;
  }

  std::size_t anomalous_segments() const { return anomalous_segments_; }
  std::size_t patches_applied() const { return patches_applied_; }

  /// Appends the dynamic state (lazy buffer, undrained emissions,
  /// counters) as byte-stable fields; options and sink are configuration
  /// and not written (same contract as OperbStream::Serialize).
  void Serialize(std::vector<std::uint8_t>* out) const;

  /// Overwrites the dynamic state from `in`, advancing `*pos`.
  Status Deserialize(std::span<const std::uint8_t> in, std::size_t* pos);

 private:
  static bool IsAnomalous(const traj::RepresentedSegment& s) {
    return s.PointCount() == 2;
  }
  void Emit(const traj::RepresentedSegment& s) {
    if (sink_) {
      sink_(s);
    } else {
      emitted_.push_back(s);
    }
  }

  OperbAOptions options_;
  traj::SegmentSink sink_;
  std::vector<traj::RepresentedSegment> emitted_;
  std::optional<traj::RepresentedSegment> x_;  ///< pending predecessor
  std::optional<traj::RepresentedSegment> y_;  ///< pending anomalous segment
  std::size_t anomalous_segments_ = 0;
  std::size_t patches_applied_ = 0;
};

/// One-pass streaming OPERB-A (Section 5): OPERB's segment stream piped
/// through the lazy patching policy. Same Push/Finish/TakeEmitted contract
/// as OperbStream; output segments are delayed by at most two segments
/// (the lazy buffer), and the working state remains O(1).
class OperbAStream {
 public:
  /// Precondition: options.Validate().ok().
  explicit OperbAStream(const OperbAOptions& options);

  // The inner OPERB stream's sink captures `this`; moving would dangle it.
  OperbAStream(const OperbAStream&) = delete;
  OperbAStream& operator=(const OperbAStream&) = delete;

  /// Zero-allocation emission path (same contract as
  /// OperbStream::SetSink): must be called before the first Push().
  void SetSink(traj::SegmentSink sink);

  void Push(const geo::Point& p);
  void Push(std::span<const geo::Point> points);
  void Finish();

  /// Resets the inner OPERB stream and the patcher for the next
  /// trajectory (same contract as OperbStream::Reset: options, sink and
  /// buffer capacity survive; no heap allocation).
  void Reset();

  std::vector<traj::RepresentedSegment> TakeEmitted();
  void TakeEmitted(std::vector<traj::RepresentedSegment>* out);

  OperbAStats stats() const;
  const OperbAOptions& options() const { return options_; }

  /// Framed inner-OPERB state followed by the patcher state (see
  /// OperbStream::Serialize for the contract).
  void Serialize(std::vector<std::uint8_t>* out) const;
  Status Deserialize(std::span<const std::uint8_t> in, std::size_t* pos);

 private:
  OperbAOptions options_;
  OperbStream inner_;
  LazyPatcher patcher_;
};

/// Batch convenience wrapper. Precondition: options.Validate().ok().
traj::PiecewiseRepresentation SimplifyOperbA(
    const traj::Trajectory& trajectory, const OperbAOptions& options,
    OperbAStats* stats = nullptr);

}  // namespace operb::core

#endif  // OPERB_CORE_OPERB_A_H_
