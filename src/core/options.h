#ifndef OPERB_CORE_OPTIONS_H_
#define OPERB_CORE_OPTIONS_H_

#include <cstddef>
#include <string>

#include "common/status.h"
#include "geo/angle.h"

namespace operb::core {

/// Options controlling OPERB (Section 4 of the paper).
///
/// `zeta` is the error bound in meters. The five `opt_*` flags correspond
/// one-to-one to the five optimization techniques of Section 4.4; all on
/// reproduces the paper's "OPERB", all off its "Raw-OPERB".
struct OperbOptions {
  /// Error bound zeta in meters. Must be > 0.
  double zeta = 40.0;

  /// (1) Choose the first active point at radius > zeta instead of zeta/4.
  bool opt_first_active = true;
  /// (2) Replace the per-point d <= zeta/2 test by d+max + d-max <= zeta.
  bool opt_adjusted_distance = true;
  /// (3) Rotate L using the side's historical max distance (dx), capped by
  ///     the full alignment angle toward the current point.
  bool opt_closer_line = true;
  /// (4) Compensate skipped zones: scale the rotation by delta-j when
  ///     consecutive active points are more than one zone apart.
  bool opt_missing_active = true;
  /// (5) Absorb subsequent points into an already determined segment while
  ///     they stay within zeta of its line.
  bool opt_absorb = true;

  /// --- Alternative fitting functions (paper Section 7 future work) ---
  ///
  /// The paper fixes the fitting function's step length at zeta/2 and the
  /// activation slack at zeta/4. These generalize both: the zone width is
  /// `zeta * step_length_factor` and a point is active when its radius
  /// gain over |L| exceeds `zeta * activation_slack_factor`. The paper's
  /// Theorem 2 is proven only for (0.5, 0.25); other values rely on the
  /// strict_bound_guard below to stay error-bounded (the guard is sound
  /// for any parameterization). Swept by bench_ablation_fitting.
  double step_length_factor = 0.5;
  double activation_slack_factor = 0.25;

  /// Error-bound guard for the heuristic optimizations (see DESIGN.md).
  ///
  /// Theorem 2 proves the zeta bound only for the *raw* checks
  /// (d <= zeta/2, unit-step rotations); optimizations (2)-(4) relax them
  /// and the paper asserts without proof that the bound survives. On
  /// adversarial inputs (e.g. large-step random walks) it does not —
  /// violations of up to ~20% of zeta occur. With this flag on (default)
  /// OPERB additionally tracks an O(1) drift budget: a conservative upper
  /// bound on the distance of every consumed point to the evolving line,
  /// charged `rotation * max_radius` per activation. An activation that
  /// could push any represented point beyond zeta breaks the segment
  /// instead, restoring a hard guarantee at a small compression cost.
  /// Off reproduces the paper's heuristics verbatim. Ignored when
  /// optimizations (2)-(4) are all off (the raw algorithm is proven).
  bool strict_bound_guard = true;

  /// Paper's per-segment cap k <= 4x10^5 (Theorem 2 / Lemma 4 constant);
  /// reaching it forces a segment break.
  std::size_t max_points_per_segment = 400000;

  /// Append a closing segment so the representation always ends at the
  /// final sample. Off reproduces the paper's pseudocode verbatim (the
  /// representation then ends at the last *active* point).
  bool emit_closing_segment = true;

  /// All five optimizations disabled (the paper's Raw-OPERB).
  static OperbOptions Raw(double zeta_in) {
    OperbOptions o;
    o.zeta = zeta_in;
    o.opt_first_active = false;
    o.opt_adjusted_distance = false;
    o.opt_closer_line = false;
    o.opt_missing_active = false;
    o.opt_absorb = false;
    return o;
  }

  /// All five optimizations enabled (the paper's OPERB).
  static OperbOptions Optimized(double zeta_in) {
    OperbOptions o;
    o.zeta = zeta_in;
    return o;
  }

  /// Validates parameter ranges.
  Status Validate() const;

  std::string ToString() const;
};

/// Options for OPERB-A (Section 5): OPERB plus patch-point interpolation.
struct OperbAOptions {
  OperbOptions base;

  /// Enables the lazy patching policy. Off degrades OPERB-A to OPERB with
  /// the (slightly delayed) lazy output order.
  bool enable_patching = true;

  /// The included-angle restriction gamma_m in [0, pi] (condition (3) of
  /// the patching method): a patch is allowed only when the absolute turn
  /// from R_{i-1} to R_{i+1} is at most pi - gamma_m. Default pi/3 as in
  /// the paper.
  double gamma_m = geo::kPi / 3.0;

  /// Practical guard not in the paper (disabled by default, value in
  /// multiples of zeta): when > 0, rejects patch points that would extend
  /// the previous segment by more than this many zeta beyond its end,
  /// which suppresses far-away intersections of nearly parallel lines.
  double max_patch_extension_zeta = 0.0;

  static OperbAOptions Raw(double zeta_in) {
    OperbAOptions o;
    o.base = OperbOptions::Raw(zeta_in);
    return o;
  }

  static OperbAOptions Optimized(double zeta_in) {
    OperbAOptions o;
    o.base = OperbOptions::Optimized(zeta_in);
    return o;
  }

  Status Validate() const;
};

}  // namespace operb::core

#endif  // OPERB_CORE_OPTIONS_H_
