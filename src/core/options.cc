#include "core/options.h"

#include <cstdio>

namespace operb::core {

Status OperbOptions::Validate() const {
  if (!(zeta > 0.0)) {
    return Status::InvalidArgument("zeta must be positive");
  }
  if (max_points_per_segment < 2) {
    return Status::InvalidArgument("max_points_per_segment must be >= 2");
  }
  if (!(step_length_factor > 0.0) || step_length_factor > 1.0) {
    return Status::InvalidArgument("step_length_factor must be in (0, 1]");
  }
  if (!(activation_slack_factor > 0.0) || activation_slack_factor > 1.0) {
    return Status::InvalidArgument(
        "activation_slack_factor must be in (0, 1]");
  }
  const bool paper_fitting =
      step_length_factor == 0.5 && activation_slack_factor == 0.25;
  if (!paper_fitting && !strict_bound_guard) {
    return Status::InvalidArgument(
        "non-default fitting parameters require strict_bound_guard (the "
        "paper's bound proof covers only step=zeta/2, slack=zeta/4)");
  }
  return Status::OK();
}

std::string OperbOptions::ToString() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "OperbOptions{zeta=%.2f, opts=%d%d%d%d%d, cap=%zu, close=%d}",
                zeta, opt_first_active, opt_adjusted_distance, opt_closer_line,
                opt_missing_active, opt_absorb, max_points_per_segment,
                emit_closing_segment);
  return buf;
}

Status OperbAOptions::Validate() const {
  OPERB_RETURN_IF_ERROR(base.Validate());
  if (gamma_m < 0.0 || gamma_m > geo::kPi) {
    return Status::InvalidArgument("gamma_m must lie in [0, pi]");
  }
  if (max_patch_extension_zeta < 0.0) {
    return Status::InvalidArgument("max_patch_extension_zeta must be >= 0");
  }
  return Status::OK();
}

}  // namespace operb::core
