#include "geo/simd.h"

#include <atomic>
#include <cstdlib>

#include "geo/distance.h"
#include "geo/simd_internal.h"

namespace operb::geo::simd {
namespace internal {
namespace {

// The scalar bodies call the exact geo/distance.h kernels so the oracle
// cannot drift from what the per-point code path computes. GCC/Clang may
// auto-vectorize these loops, but only with transformations that preserve
// per-element IEEE semantics at the default -fno-fast-math, so the result
// stays bit-identical by construction.

void SignedOffsetsScalar(const double* xs, const double* ys, std::size_t n,
                         Vec2 anchor, Vec2 unit_dir, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = SignedPointToLineOffsetDir({xs[i], ys[i]}, anchor, unit_dir);
  }
}

void RadiiScalar(const double* xs, const double* ys, std::size_t n,
                 Vec2 anchor, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = Distance({xs[i], ys[i]}, anchor);
  }
}

void DotsScalar(const double* xs, const double* ys, std::size_t n, Vec2 anchor,
                Vec2 unit_dir, double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = unit_dir.Dot(Vec2{xs[i], ys[i]} - anchor);
  }
}

void StageExtendScalar(const double* xs, const double* ys, std::size_t n,
                       Vec2 anchor, Vec2 unit_dir, Vec2 ra_unit, bool want_dot,
                       double* r, double* off, double* ra, double* dot) {
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 p{xs[i], ys[i]};
    r[i] = Distance(p, anchor);
    off[i] = SignedPointToLineOffsetDir(p, anchor, unit_dir);
    ra[i] = SignedPointToLineOffsetDir(p, anchor, ra_unit);
    if (want_dot) dot[i] = unit_dir.Dot(p - anchor);
  }
}

std::size_t CountWithinScalar(const double* xs, const double* ys,
                              std::size_t n, Vec2 anchor, Vec2 unit_dir,
                              double bound) {
  for (std::size_t i = 0; i < n; ++i) {
    const double d =
        PointToLineDistanceDir({xs[i], ys[i]}, anchor, unit_dir);
    if (!(d <= bound)) return i;  // NaN fails, like the scalar absorb test
  }
  return n;
}

std::size_t CountExtendAcceptScalar(const double* r, const double* off,
                                    const double* ra, const double* dot,
                                    std::size_t n,
                                    const ExtendAcceptParams& p) {
  if (!p.sum_ok) return 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!(r[i] - p.length <= p.slack)) return i;  // active (or NaN radius)
    const double o = off[i];
    const bool off_ok =
        o >= 0.0 ? o <= p.d_plus_max : -o <= p.d_minus_max;
    if (!off_ok) return i;  // would move a side maximum
    if (!(std::fabs(ra[i]) <= p.zeta)) return i;  // outside the chord band
    if (p.guard) {
      const double d = dot[i];
      const bool drift_ok =
          d >= 0.0 ? (o >= 0.0 ? o <= p.drift_plus : -o <= p.drift_minus)
                   : r[i] <= p.drift_back;
      if (!drift_ok) return i;  // would move a drift budget
    }
  }
  return n;
}

}  // namespace

const KernelTable kScalarTable = {SignedOffsetsScalar,    RadiiScalar,
                                  DotsScalar,             StageExtendScalar,
                                  CountWithinScalar,      CountExtendAcceptScalar};

}  // namespace internal

namespace {

const internal::KernelTable* TableFor(Level level) {
  switch (level) {
    case Level::kScalar:
      return &internal::kScalarTable;
    case Level::kSse2:
      return &internal::kSse2Table;
    case Level::kAvx2:
      return &internal::kAvx2Table;
    case Level::kNeon:
      return &internal::kNeonTable;
  }
  return &internal::kScalarTable;
}

bool CpuSupports(Level level) {
#if defined(__x86_64__) || defined(_M_X64)
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kSse2:
      return true;  // part of the x86-64 baseline ISA
    case Level::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Level::kNeon:
      return false;
  }
  return false;
#elif defined(__aarch64__)
  return level == Level::kScalar || level == Level::kNeon;
#else
  return level == Level::kScalar;
#endif
}

// -1: no ForceLevel() pin. Relaxed ordering is enough — the pin is a
// test/bench knob flipped between (not during) measured regions.
std::atomic<int> g_forced{-1};

Level ResolveFromEnvironment() {
  const char* env = std::getenv("OPERB_SIMD");
  if (env != nullptr) {
    Level requested;
    if (ParseLevel(env, &requested) && Supported(requested)) {
      return requested;
    }
    // Unknown or unsupported request: deterministic fallback to
    // auto-detection rather than a crash on an unrunnable ISA.
  }
  return Detect();
}

Level ResolvedDefault() {
  static const Level resolved = ResolveFromEnvironment();
  return resolved;
}

}  // namespace

std::string_view LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "scalar";
}

bool ParseLevel(std::string_view text, Level* out) {
  if (text == "scalar") {
    *out = Level::kScalar;
  } else if (text == "sse2") {
    *out = Level::kSse2;
  } else if (text == "avx2") {
    *out = Level::kAvx2;
  } else if (text == "neon") {
    *out = Level::kNeon;
  } else if (text == "native") {
    *out = Detect();
  } else {
    return false;
  }
  return true;
}

bool Supported(Level level) {
  return CpuSupports(level) && TableFor(level)->complete();
}

Level Detect() {
  if (Supported(Level::kAvx2)) return Level::kAvx2;
  if (Supported(Level::kSse2)) return Level::kSse2;
  if (Supported(Level::kNeon)) return Level::kNeon;
  return Level::kScalar;
}

Level Active() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Level>(forced);
  return ResolvedDefault();
}

void ForceLevel(Level level) {
  if (!Supported(level)) level = Level::kScalar;
  g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

void ClearForcedLevel() { g_forced.store(-1, std::memory_order_relaxed); }

std::size_t LaneWidth(Level level) {
  switch (level) {
    case Level::kScalar:
      return 1;
    case Level::kSse2:
    case Level::kNeon:
      return 2;
    case Level::kAvx2:
      return 4;
  }
  return 1;
}

void SignedOffsets(const double* xs, const double* ys, std::size_t n,
                   Vec2 anchor, Vec2 unit_dir, double* out) {
  TableFor(Active())->signed_offsets(xs, ys, n, anchor, unit_dir, out);
}

void Radii(const double* xs, const double* ys, std::size_t n, Vec2 anchor,
           double* out) {
  TableFor(Active())->radii(xs, ys, n, anchor, out);
}

void Dots(const double* xs, const double* ys, std::size_t n, Vec2 anchor,
          Vec2 unit_dir, double* out) {
  TableFor(Active())->dots(xs, ys, n, anchor, unit_dir, out);
}

void StageExtend(const double* xs, const double* ys, std::size_t n,
                 Vec2 anchor, Vec2 unit_dir, Vec2 ra_unit, bool want_dot,
                 double* r, double* off, double* ra, double* dot) {
  TableFor(Active())->stage_extend(xs, ys, n, anchor, unit_dir, ra_unit,
                                   want_dot, r, off, ra, dot);
}

std::size_t CountWithin(const double* xs, const double* ys, std::size_t n,
                        Vec2 anchor, Vec2 unit_dir, double bound) {
  return TableFor(Active())->count_within(xs, ys, n, anchor, unit_dir, bound);
}

std::size_t CountExtendAccept(const double* r, const double* off,
                              const double* ra, const double* dot,
                              std::size_t n,
                              const ExtendAcceptParams& params) {
  return TableFor(Active())->count_extend_accept(r, off, ra, dot, n, params);
}

}  // namespace operb::geo::simd
