#include "geo/angle.h"

namespace operb::geo {

double NormalizeAngle2Pi(double theta) {
  double r = std::fmod(theta, kTwoPi);
  if (r < 0.0) r += kTwoPi;
  // fmod of a value infinitesimally below 2*pi can round to 2*pi exactly;
  // fold it back so the contract [0, 2*pi) holds.
  if (r >= kTwoPi) r = 0.0;
  return r;
}

double NormalizeAnglePi(double theta) {
  double r = std::fmod(theta, kTwoPi);
  if (r > kPi) r -= kTwoPi;
  if (r <= -kPi) r += kTwoPi;
  return r;
}

double IncludedAngle(double theta1, double theta2) {
  return NormalizeAngle2Pi(theta2) - NormalizeAngle2Pi(theta1);
}

double AbsoluteTurnAngle(double theta1, double theta2) {
  return std::fabs(NormalizeAnglePi(theta2 - theta1));
}

}  // namespace operb::geo
