#include "geo/point.h"

#include <cstdio>

namespace operb::geo {

std::string Vec2::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.6f, %.6f)", x, y);
  return buf;
}

std::string Point::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "(%.6f, %.6f @ %.3f)", x, y, t);
  return buf;
}

}  // namespace operb::geo
