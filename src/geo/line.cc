#include "geo/line.h"

#include <cmath>

namespace operb::geo {

std::optional<LineIntersection> IntersectLines(Vec2 a0, Vec2 da, Vec2 b0,
                                               Vec2 db, double eps) {
  const double denom = da.Cross(db);
  // Scale-aware parallelism test: |da x db| compared against |da||db|.
  const double scale = da.Norm() * db.Norm();
  if (scale == 0.0 || std::fabs(denom) <= eps * scale) return std::nullopt;
  const Vec2 diff = b0 - a0;
  LineIntersection out;
  out.s = diff.Cross(db) / denom;
  out.t = diff.Cross(da) / denom;
  out.point = a0 + da * out.s;
  return out;
}

}  // namespace operb::geo
