// AVX2 bodies of the geo::simd batch kernels: 4 x f64 per vector. This TU
// is the only one compiled with -mavx2 (a per-source-file property in
// src/geo/CMakeLists.txt); the dispatcher guarantees its functions are
// only ever called after __builtin_cpu_supports("avx2") succeeds. The
// build deliberately does NOT enable -mfma here: contraction into FMA
// would change per-element rounding and break the bit-identity contract
// with the scalar oracle (DESIGN.md §12).

#include "geo/distance.h"
#include "geo/simd_internal.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace operb::geo::simd::internal {
namespace {

void SignedOffsetsAvx2(const double* xs, const double* ys, std::size_t n,
                       Vec2 anchor, Vec2 unit_dir, double* out) {
  const __m256d ax = _mm256_set1_pd(anchor.x);
  const __m256d ay = _mm256_set1_pd(anchor.y);
  const __m256d ux = _mm256_set1_pd(unit_dir.x);
  const __m256d uy = _mm256_set1_pd(unit_dir.y);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d rx = _mm256_sub_pd(_mm256_loadu_pd(xs + i), ax);
    const __m256d ry = _mm256_sub_pd(_mm256_loadu_pd(ys + i), ay);
    const __m256d cross =
        _mm256_sub_pd(_mm256_mul_pd(ux, ry), _mm256_mul_pd(uy, rx));
    _mm256_storeu_pd(out + i, cross);
  }
  for (; i < n; ++i) {
    out[i] = SignedPointToLineOffsetDir({xs[i], ys[i]}, anchor, unit_dir);
  }
}

void RadiiAvx2(const double* xs, const double* ys, std::size_t n, Vec2 anchor,
               double* out) {
  const __m256d ax = _mm256_set1_pd(anchor.x);
  const __m256d ay = _mm256_set1_pd(anchor.y);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d rx = _mm256_sub_pd(_mm256_loadu_pd(xs + i), ax);
    const __m256d ry = _mm256_sub_pd(_mm256_loadu_pd(ys + i), ay);
    const __m256d sq =
        _mm256_add_pd(_mm256_mul_pd(rx, rx), _mm256_mul_pd(ry, ry));
    _mm256_storeu_pd(out + i, _mm256_sqrt_pd(sq));
  }
  for (; i < n; ++i) {
    out[i] = Distance({xs[i], ys[i]}, anchor);
  }
}

void DotsAvx2(const double* xs, const double* ys, std::size_t n, Vec2 anchor,
              Vec2 unit_dir, double* out) {
  const __m256d ax = _mm256_set1_pd(anchor.x);
  const __m256d ay = _mm256_set1_pd(anchor.y);
  const __m256d ux = _mm256_set1_pd(unit_dir.x);
  const __m256d uy = _mm256_set1_pd(unit_dir.y);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d rx = _mm256_sub_pd(_mm256_loadu_pd(xs + i), ax);
    const __m256d ry = _mm256_sub_pd(_mm256_loadu_pd(ys + i), ay);
    const __m256d dot =
        _mm256_add_pd(_mm256_mul_pd(ux, rx), _mm256_mul_pd(uy, ry));
    _mm256_storeu_pd(out + i, dot);
  }
  for (; i < n; ++i) {
    out[i] = unit_dir.Dot(Vec2{xs[i], ys[i]} - anchor);
  }
}

void StageExtendAvx2(const double* xs, const double* ys, std::size_t n,
                     Vec2 anchor, Vec2 unit_dir, Vec2 ra_unit, bool want_dot,
                     double* r, double* off, double* ra, double* dot) {
  const __m256d ax = _mm256_set1_pd(anchor.x);
  const __m256d ay = _mm256_set1_pd(anchor.y);
  const __m256d ux = _mm256_set1_pd(unit_dir.x);
  const __m256d uy = _mm256_set1_pd(unit_dir.y);
  const __m256d rax = _mm256_set1_pd(ra_unit.x);
  const __m256d ray = _mm256_set1_pd(ra_unit.y);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d rx = _mm256_sub_pd(_mm256_loadu_pd(xs + i), ax);
    const __m256d ry = _mm256_sub_pd(_mm256_loadu_pd(ys + i), ay);
    _mm256_storeu_pd(r + i,
                     _mm256_sqrt_pd(_mm256_add_pd(_mm256_mul_pd(rx, rx),
                                                  _mm256_mul_pd(ry, ry))));
    _mm256_storeu_pd(
        off + i, _mm256_sub_pd(_mm256_mul_pd(ux, ry), _mm256_mul_pd(uy, rx)));
    _mm256_storeu_pd(
        ra + i,
        _mm256_sub_pd(_mm256_mul_pd(rax, ry), _mm256_mul_pd(ray, rx)));
    if (want_dot) {
      _mm256_storeu_pd(
          dot + i,
          _mm256_add_pd(_mm256_mul_pd(ux, rx), _mm256_mul_pd(uy, ry)));
    }
  }
  for (; i < n; ++i) {
    const Vec2 p{xs[i], ys[i]};
    r[i] = Distance(p, anchor);
    off[i] = SignedPointToLineOffsetDir(p, anchor, unit_dir);
    ra[i] = SignedPointToLineOffsetDir(p, anchor, ra_unit);
    if (want_dot) dot[i] = unit_dir.Dot(p - anchor);
  }
}

std::size_t CountWithinAvx2(const double* xs, const double* ys, std::size_t n,
                            Vec2 anchor, Vec2 unit_dir, double bound) {
  const __m256d ax = _mm256_set1_pd(anchor.x);
  const __m256d ay = _mm256_set1_pd(anchor.y);
  const __m256d ux = _mm256_set1_pd(unit_dir.x);
  const __m256d uy = _mm256_set1_pd(unit_dir.y);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d vbound = _mm256_set1_pd(bound);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d rx = _mm256_sub_pd(_mm256_loadu_pd(xs + i), ax);
    const __m256d ry = _mm256_sub_pd(_mm256_loadu_pd(ys + i), ay);
    const __m256d cross =
        _mm256_sub_pd(_mm256_mul_pd(ux, ry), _mm256_mul_pd(uy, rx));
    const __m256d dist = _mm256_andnot_pd(sign_mask, cross);  // fabs
    // Ordered quiet <=: NaN lanes compare false, like the scalar test.
    const int mask = _mm256_movemask_pd(
        _mm256_cmp_pd(dist, vbound, _CMP_LE_OQ));
    if (mask != 0xF) {
      return i + static_cast<std::size_t>(
                     __builtin_ctz(static_cast<unsigned>(~mask & 0xF)));
    }
  }
  for (; i < n; ++i) {
    const double d = PointToLineDistanceDir({xs[i], ys[i]}, anchor, unit_dir);
    if (!(d <= bound)) return i;
  }
  return n;
}

std::size_t CountExtendAcceptAvx2(const double* r, const double* off,
                                  const double* ra, const double* dot,
                                  std::size_t n,
                                  const ExtendAcceptParams& p) {
  if (!p.sum_ok) return 0;
  const __m256d zero = _mm256_setzero_pd();
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d len = _mm256_set1_pd(p.length);
  const __m256d slack = _mm256_set1_pd(p.slack);
  const __m256d dpm = _mm256_set1_pd(p.d_plus_max);
  const __m256d dmm = _mm256_set1_pd(p.d_minus_max);
  const __m256d zeta = _mm256_set1_pd(p.zeta);
  const __m256d dr_plus = _mm256_set1_pd(p.drift_plus);
  const __m256d dr_minus = _mm256_set1_pd(p.drift_minus);
  const __m256d dr_back = _mm256_set1_pd(p.drift_back);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vr = _mm256_loadu_pd(r + i);
    const __m256d vo = _mm256_loadu_pd(off + i);
    const __m256d vra = _mm256_loadu_pd(ra + i);
    // All compares are ordered quiet (_OQ): NaN lanes fail, like the
    // scalar comparisons they mirror.
    const __m256d inactive =
        _mm256_cmp_pd(_mm256_sub_pd(vr, len), slack, _CMP_LE_OQ);
    const __m256d pos = _mm256_cmp_pd(vo, zero, _CMP_GE_OQ);
    const __m256d neg_off = _mm256_xor_pd(vo, sign_mask);
    const __m256d off_ok = _mm256_or_pd(
        _mm256_and_pd(pos, _mm256_cmp_pd(vo, dpm, _CMP_LE_OQ)),
        _mm256_andnot_pd(pos, _mm256_cmp_pd(neg_off, dmm, _CMP_LE_OQ)));
    const __m256d ra_ok = _mm256_cmp_pd(
        _mm256_andnot_pd(sign_mask, vra), zeta, _CMP_LE_OQ);
    __m256d accept = _mm256_and_pd(inactive, _mm256_and_pd(off_ok, ra_ok));
    if (p.guard) {
      const __m256d vd = _mm256_loadu_pd(dot + i);
      const __m256d ahead = _mm256_cmp_pd(vd, zero, _CMP_GE_OQ);
      const __m256d fwd_ok = _mm256_or_pd(
          _mm256_and_pd(pos, _mm256_cmp_pd(vo, dr_plus, _CMP_LE_OQ)),
          _mm256_andnot_pd(pos,
                           _mm256_cmp_pd(neg_off, dr_minus, _CMP_LE_OQ)));
      const __m256d drift_ok = _mm256_or_pd(
          _mm256_and_pd(ahead, fwd_ok),
          _mm256_andnot_pd(ahead, _mm256_cmp_pd(vr, dr_back, _CMP_LE_OQ)));
      accept = _mm256_and_pd(accept, drift_ok);
    }
    const int mask = _mm256_movemask_pd(accept);
    if (mask != 0xF) {
      return i + static_cast<std::size_t>(
                     __builtin_ctz(static_cast<unsigned>(~mask & 0xF)));
    }
  }
  for (; i < n; ++i) {
    if (!(r[i] - p.length <= p.slack)) return i;
    const double o = off[i];
    const bool off_ok =
        o >= 0.0 ? o <= p.d_plus_max : -o <= p.d_minus_max;
    if (!off_ok) return i;
    if (!(std::fabs(ra[i]) <= p.zeta)) return i;
    if (p.guard) {
      const double d = dot[i];
      const bool drift_ok =
          d >= 0.0 ? (o >= 0.0 ? o <= p.drift_plus : -o <= p.drift_minus)
                   : r[i] <= p.drift_back;
      if (!drift_ok) return i;
    }
  }
  return n;
}

}  // namespace

const KernelTable kAvx2Table = {SignedOffsetsAvx2,    RadiiAvx2,
                                DotsAvx2,             StageExtendAvx2,
                                CountWithinAvx2,      CountExtendAcceptAvx2};

}  // namespace operb::geo::simd::internal

#else  // !__AVX2__

namespace operb::geo::simd::internal {
const KernelTable kAvx2Table = {};
}  // namespace operb::geo::simd::internal

#endif
