#ifndef OPERB_GEO_POINT_H_
#define OPERB_GEO_POINT_H_

#include <cmath>
#include <cstdint>
#include <string>

namespace operb::geo {

/// A 2-D vector / point in a local planar (meter) coordinate system.
///
/// The simplification algorithms work in a projected plane: `x` is meters
/// east, `y` meters north of some local reference (see
/// geo/projection.h for the WGS-84 mapping). Vector arithmetic is provided
/// so distance/angle code reads like the math in the paper.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_in, double y_in) : x(x_in), y(y_in) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }

  Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }

  constexpr bool operator==(const Vec2&) const = default;

  /// Dot product.
  constexpr double Dot(Vec2 o) const { return x * o.x + y * o.y; }

  /// 2-D cross product (z component of the 3-D cross product). Positive
  /// when `o` is counter-clockwise from `*this`.
  constexpr double Cross(Vec2 o) const { return x * o.y - y * o.x; }

  /// Euclidean norm. Uses sqrt(x^2+y^2) rather than std::hypot: inputs
  /// are meter-scale offsets, far from overflow/underflow, and this is
  /// the hottest scalar in the one-pass simplifiers.
  double Norm() const { return std::sqrt(x * x + y * y); }
  constexpr double SquaredNorm() const { return x * x + y * y; }

  /// Angle with the +x axis in radians, in (-pi, pi]. Zero vector maps to 0.
  double Angle() const { return (x == 0.0 && y == 0.0) ? 0.0 : std::atan2(y, x); }

  /// Unit vector with the given angle (radians) from the +x axis.
  static Vec2 FromAngle(double theta) {
    return {std::cos(theta), std::sin(theta)};
  }

  std::string ToString() const;
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

/// Euclidean distance between two points.
inline double Distance(Vec2 a, Vec2 b) { return (a - b).Norm(); }

inline double SquaredDistance(Vec2 a, Vec2 b) { return (a - b).SquaredNorm(); }

/// A trajectory sample: planar position plus timestamp.
///
/// This is the paper's data point P(x, y, t): "a moving object is located
/// at longitude x and latitude y at time t", after projection to local
/// meters. `t` is seconds (fractional allowed) since an arbitrary epoch;
/// trajectories require strictly increasing `t`.
struct Point {
  double x = 0.0;
  double y = 0.0;
  double t = 0.0;

  constexpr Point() = default;
  constexpr Point(double x_in, double y_in, double t_in)
      : x(x_in), y(y_in), t(t_in) {}

  constexpr Vec2 pos() const { return {x, y}; }

  constexpr bool operator==(const Point&) const = default;

  std::string ToString() const;
};

}  // namespace operb::geo

#endif  // OPERB_GEO_POINT_H_
