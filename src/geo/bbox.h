#ifndef OPERB_GEO_BBOX_H_
#define OPERB_GEO_BBOX_H_

#include <array>
#include <limits>

#include "geo/point.h"

namespace operb::geo {

/// Axis-aligned bounding box accumulated point by point.
///
/// BQS builds one per quadrant; the datagen and eval modules use it for
/// extents. An empty box reports IsEmpty() and contains nothing.
struct BoundingBox {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  void Extend(Vec2 p) {
    if (p.x < min_x) min_x = p.x;
    if (p.y < min_y) min_y = p.y;
    if (p.x > max_x) max_x = p.x;
    if (p.y > max_y) max_y = p.y;
  }

  void Extend(const BoundingBox& o) {
    if (o.IsEmpty()) return;
    Extend(Vec2{o.min_x, o.min_y});
    Extend(Vec2{o.max_x, o.max_y});
  }

  bool Contains(Vec2 p) const {
    return !IsEmpty() && p.x >= min_x && p.x <= max_x && p.y >= min_y &&
           p.y <= max_y;
  }

  double Width() const { return IsEmpty() ? 0.0 : max_x - min_x; }
  double Height() const { return IsEmpty() ? 0.0 : max_y - min_y; }

  /// Corners in counter-clockwise order starting from (min_x, min_y).
  /// Precondition: !IsEmpty().
  std::array<Vec2, 4> Corners() const {
    return {Vec2{min_x, min_y}, Vec2{max_x, min_y}, Vec2{max_x, max_y},
            Vec2{min_x, max_y}};
  }
};

}  // namespace operb::geo

#endif  // OPERB_GEO_BBOX_H_
