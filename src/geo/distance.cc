#include "geo/distance.h"

#include <algorithm>
#include <cmath>

namespace operb::geo {

double PointToLineDistance(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len = ab.Norm();
  if (len == 0.0) return Distance(p, a);
  return std::fabs(ab.Cross(p - a)) / len;
}

double PointToLineDistance(Vec2 p, const AnchoredLine& line) {
  return PointToLineDistanceDir(p, line.anchor, line.dir);
}

double PointToSegmentDistance(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len2 = ab.SquaredNorm();
  if (len2 == 0.0) return Distance(p, a);
  const double t = std::clamp((p - a).Dot(ab) / len2, 0.0, 1.0);
  return Distance(p, a + ab * t);
}

double SignedPointToLineOffset(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len = ab.Norm();
  if (len == 0.0) return Distance(p, a);
  return ab.Cross(p - a) / len;
}

double SignedPointToLineOffset(Vec2 p, const AnchoredLine& line) {
  return SignedPointToLineOffsetDir(p, line.anchor, line.dir);
}

double ProjectionParameter(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len2 = ab.SquaredNorm();
  if (len2 == 0.0) return 0.0;
  return (p - a).Dot(ab) / len2;
}

double SynchronousEuclideanDistance(const Point& p, const Point& a,
                                    const Point& b) {
  const double dt = b.t - a.t;
  if (dt == 0.0) return Distance(p.pos(), a.pos());
  const double u = (p.t - a.t) / dt;
  const Vec2 expected = a.pos() + (b.pos() - a.pos()) * u;
  return Distance(p.pos(), expected);
}

}  // namespace operb::geo
