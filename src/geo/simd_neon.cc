// NEON bodies of the geo::simd batch kernels: 2 x f64 per vector.
// Advanced SIMD with double-precision arithmetic is part of the aarch64
// baseline, so no special compile flags are needed. vsqrtq_f64 is IEEE
// correctly rounded and the arithmetic mirrors the scalar kernels
// operand-for-operand; vfmaq is deliberately NOT used (fused rounding
// would break bit-identity with the scalar oracle, DESIGN.md §12).

#include "geo/distance.h"
#include "geo/simd_internal.h"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace operb::geo::simd::internal {
namespace {

void SignedOffsetsNeon(const double* xs, const double* ys, std::size_t n,
                       Vec2 anchor, Vec2 unit_dir, double* out) {
  const float64x2_t ax = vdupq_n_f64(anchor.x);
  const float64x2_t ay = vdupq_n_f64(anchor.y);
  const float64x2_t ux = vdupq_n_f64(unit_dir.x);
  const float64x2_t uy = vdupq_n_f64(unit_dir.y);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t rx = vsubq_f64(vld1q_f64(xs + i), ax);
    const float64x2_t ry = vsubq_f64(vld1q_f64(ys + i), ay);
    const float64x2_t cross =
        vsubq_f64(vmulq_f64(ux, ry), vmulq_f64(uy, rx));
    vst1q_f64(out + i, cross);
  }
  for (; i < n; ++i) {
    out[i] = SignedPointToLineOffsetDir({xs[i], ys[i]}, anchor, unit_dir);
  }
}

void RadiiNeon(const double* xs, const double* ys, std::size_t n, Vec2 anchor,
               double* out) {
  const float64x2_t ax = vdupq_n_f64(anchor.x);
  const float64x2_t ay = vdupq_n_f64(anchor.y);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t rx = vsubq_f64(vld1q_f64(xs + i), ax);
    const float64x2_t ry = vsubq_f64(vld1q_f64(ys + i), ay);
    const float64x2_t sq =
        vaddq_f64(vmulq_f64(rx, rx), vmulq_f64(ry, ry));
    vst1q_f64(out + i, vsqrtq_f64(sq));
  }
  for (; i < n; ++i) {
    out[i] = Distance({xs[i], ys[i]}, anchor);
  }
}

void DotsNeon(const double* xs, const double* ys, std::size_t n, Vec2 anchor,
              Vec2 unit_dir, double* out) {
  const float64x2_t ax = vdupq_n_f64(anchor.x);
  const float64x2_t ay = vdupq_n_f64(anchor.y);
  const float64x2_t ux = vdupq_n_f64(unit_dir.x);
  const float64x2_t uy = vdupq_n_f64(unit_dir.y);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t rx = vsubq_f64(vld1q_f64(xs + i), ax);
    const float64x2_t ry = vsubq_f64(vld1q_f64(ys + i), ay);
    const float64x2_t dot =
        vaddq_f64(vmulq_f64(ux, rx), vmulq_f64(uy, ry));
    vst1q_f64(out + i, dot);
  }
  for (; i < n; ++i) {
    out[i] = unit_dir.Dot(Vec2{xs[i], ys[i]} - anchor);
  }
}

void StageExtendNeon(const double* xs, const double* ys, std::size_t n,
                     Vec2 anchor, Vec2 unit_dir, Vec2 ra_unit, bool want_dot,
                     double* r, double* off, double* ra, double* dot) {
  const float64x2_t ax = vdupq_n_f64(anchor.x);
  const float64x2_t ay = vdupq_n_f64(anchor.y);
  const float64x2_t ux = vdupq_n_f64(unit_dir.x);
  const float64x2_t uy = vdupq_n_f64(unit_dir.y);
  const float64x2_t rax = vdupq_n_f64(ra_unit.x);
  const float64x2_t ray = vdupq_n_f64(ra_unit.y);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t rx = vsubq_f64(vld1q_f64(xs + i), ax);
    const float64x2_t ry = vsubq_f64(vld1q_f64(ys + i), ay);
    vst1q_f64(r + i, vsqrtq_f64(vaddq_f64(vmulq_f64(rx, rx),
                                          vmulq_f64(ry, ry))));
    vst1q_f64(off + i, vsubq_f64(vmulq_f64(ux, ry), vmulq_f64(uy, rx)));
    vst1q_f64(ra + i, vsubq_f64(vmulq_f64(rax, ry), vmulq_f64(ray, rx)));
    if (want_dot) {
      vst1q_f64(dot + i, vaddq_f64(vmulq_f64(ux, rx), vmulq_f64(uy, ry)));
    }
  }
  for (; i < n; ++i) {
    const Vec2 p{xs[i], ys[i]};
    r[i] = Distance(p, anchor);
    off[i] = SignedPointToLineOffsetDir(p, anchor, unit_dir);
    ra[i] = SignedPointToLineOffsetDir(p, anchor, ra_unit);
    if (want_dot) dot[i] = unit_dir.Dot(p - anchor);
  }
}

std::size_t CountWithinNeon(const double* xs, const double* ys, std::size_t n,
                            Vec2 anchor, Vec2 unit_dir, double bound) {
  const float64x2_t ax = vdupq_n_f64(anchor.x);
  const float64x2_t ay = vdupq_n_f64(anchor.y);
  const float64x2_t ux = vdupq_n_f64(unit_dir.x);
  const float64x2_t uy = vdupq_n_f64(unit_dir.y);
  const float64x2_t vbound = vdupq_n_f64(bound);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t rx = vsubq_f64(vld1q_f64(xs + i), ax);
    const float64x2_t ry = vsubq_f64(vld1q_f64(ys + i), ay);
    const float64x2_t cross =
        vsubq_f64(vmulq_f64(ux, ry), vmulq_f64(uy, rx));
    const float64x2_t dist = vabsq_f64(cross);
    // vcleq is an ordered compare: NaN lanes produce 0 (fail), matching
    // the scalar `d <= zeta` test.
    const uint64x2_t le = vcleq_f64(dist, vbound);
    const std::uint64_t lane0 = vgetq_lane_u64(le, 0);
    const std::uint64_t lane1 = vgetq_lane_u64(le, 1);
    if (lane0 == 0) return i;
    if (lane1 == 0) return i + 1;
  }
  for (; i < n; ++i) {
    const double d = PointToLineDistanceDir({xs[i], ys[i]}, anchor, unit_dir);
    if (!(d <= bound)) return i;
  }
  return n;
}

std::size_t CountExtendAcceptNeon(const double* r, const double* off,
                                  const double* ra, const double* dot,
                                  std::size_t n,
                                  const ExtendAcceptParams& p) {
  if (!p.sum_ok) return 0;
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t len = vdupq_n_f64(p.length);
  const float64x2_t slack = vdupq_n_f64(p.slack);
  const float64x2_t dpm = vdupq_n_f64(p.d_plus_max);
  const float64x2_t dmm = vdupq_n_f64(p.d_minus_max);
  const float64x2_t zeta = vdupq_n_f64(p.zeta);
  const float64x2_t dr_plus = vdupq_n_f64(p.drift_plus);
  const float64x2_t dr_minus = vdupq_n_f64(p.drift_minus);
  const float64x2_t dr_back = vdupq_n_f64(p.drift_back);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t vr = vld1q_f64(r + i);
    const float64x2_t vo = vld1q_f64(off + i);
    const float64x2_t vra = vld1q_f64(ra + i);
    // Ordered compares: NaN lanes produce 0 (fail), like the scalar
    // comparisons they mirror.
    const uint64x2_t inactive = vcleq_f64(vsubq_f64(vr, len), slack);
    const uint64x2_t pos = vcgeq_f64(vo, zero);
    const float64x2_t neg_off = vnegq_f64(vo);
    const uint64x2_t off_ok =
        vorrq_u64(vandq_u64(pos, vcleq_f64(vo, dpm)),
                  vbicq_u64(vcleq_f64(neg_off, dmm), pos));
    const uint64x2_t ra_ok = vcleq_f64(vabsq_f64(vra), zeta);
    uint64x2_t accept = vandq_u64(inactive, vandq_u64(off_ok, ra_ok));
    if (p.guard) {
      const float64x2_t vd = vld1q_f64(dot + i);
      const uint64x2_t ahead = vcgeq_f64(vd, zero);
      const uint64x2_t fwd_ok =
          vorrq_u64(vandq_u64(pos, vcleq_f64(vo, dr_plus)),
                    vbicq_u64(vcleq_f64(neg_off, dr_minus), pos));
      const uint64x2_t drift_ok =
          vorrq_u64(vandq_u64(ahead, fwd_ok),
                    vbicq_u64(vcleq_f64(vr, dr_back), ahead));
      accept = vandq_u64(accept, drift_ok);
    }
    if (vgetq_lane_u64(accept, 0) == 0) return i;
    if (vgetq_lane_u64(accept, 1) == 0) return i + 1;
  }
  for (; i < n; ++i) {
    if (!(r[i] - p.length <= p.slack)) return i;
    const double o = off[i];
    const bool off_ok =
        o >= 0.0 ? o <= p.d_plus_max : -o <= p.d_minus_max;
    if (!off_ok) return i;
    if (!(std::fabs(ra[i]) <= p.zeta)) return i;
    if (p.guard) {
      const double d = dot[i];
      const bool drift_ok =
          d >= 0.0 ? (o >= 0.0 ? o <= p.drift_plus : -o <= p.drift_minus)
                   : r[i] <= p.drift_back;
      if (!drift_ok) return i;
    }
  }
  return n;
}

}  // namespace

const KernelTable kNeonTable = {SignedOffsetsNeon,    RadiiNeon,
                                DotsNeon,             StageExtendNeon,
                                CountWithinNeon,      CountExtendAcceptNeon};

}  // namespace operb::geo::simd::internal

#else  // !__aarch64__

namespace operb::geo::simd::internal {
const KernelTable kNeonTable = {};
}  // namespace operb::geo::simd::internal

#endif
