#include "geo/polygon_clip.h"

#include <cmath>

namespace operb::geo {

HalfPlane HalfPlane::LeftOf(Vec2 a, Vec2 b) {
  // Left of a->b means cross(b-a, p-a) >= 0, i.e.
  // (b-a).x*(p-a).y - (b-a).y*(p-a).x >= 0. Rearranged into n.p <= c with
  // n = (dy, -dx) and c = n.a.
  const Vec2 d = b - a;
  HalfPlane hp;
  hp.normal = {d.y, -d.x};
  hp.offset = hp.normal.Dot(a);
  return hp;
}

HalfPlane HalfPlane::RightOf(Vec2 a, Vec2 b) {
  const Vec2 d = b - a;
  HalfPlane hp;
  hp.normal = {-d.y, d.x};
  hp.offset = hp.normal.Dot(a);
  return hp;
}

std::vector<Vec2> ClipPolygon(const std::vector<Vec2>& polygon,
                              const HalfPlane& hp) {
  std::vector<Vec2> out;
  const size_t n = polygon.size();
  if (n == 0) return out;
  out.reserve(n + 1);
  for (size_t i = 0; i < n; ++i) {
    const Vec2 cur = polygon[i];
    const Vec2 nxt = polygon[(i + 1) % n];
    const double ec = hp.Evaluate(cur);
    const double en = hp.Evaluate(nxt);
    const bool cur_in = ec <= 1e-9;
    const bool nxt_in = en <= 1e-9;
    if (cur_in) out.push_back(cur);
    if (cur_in != nxt_in) {
      // The edge crosses the boundary; interpolate the crossing point.
      const double denom = ec - en;
      if (std::fabs(denom) > 0.0) {
        const double t = ec / denom;
        out.push_back(cur + (nxt - cur) * t);
      }
    }
  }
  return out;
}

std::vector<Vec2> ClipPolygon(std::vector<Vec2> polygon,
                              const std::vector<HalfPlane>& hps) {
  for (const HalfPlane& hp : hps) {
    polygon = ClipPolygon(polygon, hp);
    if (polygon.empty()) break;
  }
  return polygon;
}

}  // namespace operb::geo
