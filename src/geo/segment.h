#ifndef OPERB_GEO_SEGMENT_H_
#define OPERB_GEO_SEGMENT_H_

#include <string>

#include "geo/angle.h"
#include "geo/point.h"

namespace operb::geo {

/// A directed line segment from `start` to `end` (the paper's L = Ps->Pe).
///
/// Degenerate (zero-length) segments are permitted — the fitting function
/// starts from L0 = Ps->Ps — and the distance helpers treat them as a
/// point.
struct DirectedSegment {
  Vec2 start;
  Vec2 end;

  constexpr DirectedSegment() = default;
  constexpr DirectedSegment(Vec2 s, Vec2 e) : start(s), end(e) {}

  double Length() const { return Distance(start, end); }
  constexpr bool IsDegenerate() const { return start == end; }

  /// Direction angle with the x-axis, normalized to [0, 2*pi) as the paper
  /// defines L.theta. Degenerate segments report 0.
  double Theta() const {
    if (IsDegenerate()) return 0.0;
    return NormalizeAngle2Pi((end - start).Angle());
  }

  constexpr Vec2 Displacement() const { return end - start; }

  /// Point at parameter `t` along the segment (t=0 start, t=1 end).
  constexpr Vec2 At(double t) const {
    return start + (end - start) * t;
  }

  std::string ToString() const;
};

/// A directed line described by an anchor point, direction angle and
/// length — the representation the fitting function evolves: a triple
/// (Ps, |L|, L.theta). Unlike DirectedSegment the direction survives a
/// zero length (case (2) of the fitting function assigns theta before the
/// length reaches a full step).
struct AnchoredLine {
  Vec2 anchor;
  double length = 0.0;
  double theta = 0.0;
  /// Unit direction vector of `theta`, cached at construction. Invariant:
  /// dir == Vec2::FromAngle(theta). The per-point distance kernels
  /// (geo/distance.h) read this instead of re-paying sin/cos on every
  /// check — one trig evaluation per *rotation event*, not per point.
  /// Mutate theta only through the constructors so the pair stays in sync.
  Vec2 dir{1.0, 0.0};

  constexpr AnchoredLine() = default;
  AnchoredLine(Vec2 anchor_in, double length_in, double theta_in)
      : anchor(anchor_in),
        length(length_in),
        theta(theta_in),
        dir(Vec2::FromAngle(theta_in)) {}
  /// Trusted constructor for callers that already maintain the unit
  /// vector (e.g. the fitting function). Precondition:
  /// dir_in == Vec2::FromAngle(theta_in).
  constexpr AnchoredLine(Vec2 anchor_in, double length_in, double theta_in,
                         Vec2 dir_in)
      : anchor(anchor_in), length(length_in), theta(theta_in), dir(dir_in) {}

  Vec2 Endpoint() const { return anchor + dir * length; }

  DirectedSegment ToSegment() const { return {anchor, Endpoint()}; }

  std::string ToString() const;
};

}  // namespace operb::geo

#endif  // OPERB_GEO_SEGMENT_H_
