#ifndef OPERB_GEO_SIMD_H_
#define OPERB_GEO_SIMD_H_

#include <cstddef>
#include <string_view>

#include "geo/point.h"

namespace operb::geo::simd {

/// Vector instruction sets the batch kernels can target. Levels are
/// *exact* targets, not capability tiers: kSse2 runs the 2-lane SSE2
/// bodies even on an AVX2 machine, which is what lets the differential
/// tests pin every implementation against the scalar oracle.
enum class Level : int {
  kScalar = 0,  ///< portable C++ loops (the in-tree oracle)
  kSse2 = 1,    ///< 2 x f64 (x86-64 baseline)
  kAvx2 = 2,    ///< 4 x f64 (runtime-detected via cpuid)
  kNeon = 3,    ///< 2 x f64 (aarch64 baseline)
};

/// Lower-case display name ("scalar", "sse2", "avx2", "neon").
std::string_view LevelName(Level level);

/// Parses "scalar" | "sse2" | "avx2" | "neon" | "native" (the OPERB_SIMD
/// grammar); "native" resolves to Detect(). Returns false (and leaves
/// `*out` untouched) for anything else.
bool ParseLevel(std::string_view text, Level* out);

/// True when this build *and* this CPU can execute `level`'s kernels.
bool Supported(Level level);

/// Best supported level of the running machine (cpuid on x86, NEON on
/// aarch64, scalar elsewhere).
Level Detect();

/// The level the dispatched kernels below currently run at. Resolution
/// order: ForceLevel() override, else the OPERB_SIMD environment
/// variable (read once; unknown or unsupported values fall back to
/// auto-detection), else Detect(). Thread-safe.
Level Active();

/// Test/bench hook: pins Active() to `level` until ClearForcedLevel().
/// Precondition: Supported(level). Takes effect for subsequent kernel
/// calls (not synchronized against concurrently running ones).
void ForceLevel(Level level);

/// Removes the ForceLevel() pin, restoring env/auto resolution.
void ClearForcedLevel();

/// SIMD lanes (f64 elements per vector) of `level`; 1 for scalar.
std::size_t LaneWidth(Level level);

/// ---- Batch kernels ------------------------------------------------
///
/// All kernels are element-wise maps of the scalar hot-path kernels in
/// geo/distance.h and bit-identical to them per element: same operand
/// order, no reassociation, no FMA contraction, IEEE sqrt (see
/// DESIGN.md §12). Inputs are SoA coordinate arrays; `anchor` and
/// `unit_dir` are the per-call line parameters the scalar kernels take.
/// xs/ys/out may not alias. Dispatched on Active() per call — callers
/// amortize the dispatch over a staged window, not per point.

/// out[i] = SignedPointToLineOffsetDir({xs[i], ys[i]}, anchor, unit_dir)
///        = unit_dir.Cross(p_i - anchor).
void SignedOffsets(const double* xs, const double* ys, std::size_t n,
                   Vec2 anchor, Vec2 unit_dir, double* out);

/// out[i] = Distance({xs[i], ys[i]}, anchor) = |p_i - anchor|.
void Radii(const double* xs, const double* ys, std::size_t n, Vec2 anchor,
           double* out);

/// out[i] = unit_dir.Dot(p_i - anchor) (projection onto the line
/// direction; the drift guard's ahead/behind test).
void Dots(const double* xs, const double* ys, std::size_t n, Vec2 anchor,
          Vec2 unit_dir, double* out);

/// Length of the leading run with
///   fabs(unit_dir.Cross(p_i - anchor)) <= bound,
/// i.e. how many consecutive points the absorb test accepts before the
/// first failure. NaN offsets fail the test, exactly like the scalar
/// `d <= zeta` comparison. Early-exits past the first failing block.
std::size_t CountWithin(const double* xs, const double* ys, std::size_t n,
                        Vec2 anchor, Vec2 unit_dir, double bound);

/// Fused extend-mode staging: one pass over xs/ys producing every
/// intermediate the extend consume test reads. Per element (identical
/// expressions to the individual kernels above — rel = p_i - anchor is
/// computed once, but reuse of an identical IEEE value is exact):
///   r[i]   = |rel|                 (Radii)
///   off[i] = unit_dir.Cross(rel)   (SignedOffsets vs L)
///   ra[i]  = ra_unit.Cross(rel)    (SignedOffsets vs R_a)
///   dot[i] = unit_dir.Dot(rel)     (Dots; only when want_dot — `dot`
///                                   may be null otherwise)
void StageExtend(const double* xs, const double* ys, std::size_t n,
                 Vec2 anchor, Vec2 unit_dir, Vec2 ra_unit, bool want_dot,
                 double* r, double* off, double* ra, double* dot);

/// Frozen fitting-function state for CountExtendAccept: the scalar
/// parameters OPERB's extend-mode consume test reads, captured at the
/// start of a run. See core/operb.cc ExtendRun for how the caller
/// refreshes them whenever a consumed point mutates the state.
struct ExtendAcceptParams {
  double length = 0.0;       ///< |L| (the activity test's base)
  double slack = 0.0;        ///< activation slack (zeta/4)
  double d_plus_max = 0.0;   ///< historical left-side offset max
  double d_minus_max = 0.0;  ///< historical right-side offset max
  double zeta = 0.0;         ///< error bound (the R_a distance test)
  double drift_plus = 0.0;   ///< drift budgets (guard engaged only)
  double drift_minus = 0.0;
  double drift_back = 0.0;
  bool guard = false;    ///< drift-budget guard engaged
  bool sum_ok = false;   ///< d_plus_max + d_minus_max <= zeta, precomputed
};

/// Length of the leading run of *no-op consumes*: points the extend-mode
/// state machine would consume without changing any fitting state —
/// inactive (r - length <= slack), offsets inside both historical side
/// maxima (so the adjusted-distance sum equals the precomputed constant
/// and ObserveOffset would not move a maximum), within `zeta` of the
/// candidate chord, and (when the guard is engaged) inside the drift
/// budgets. Inputs are the per-point intermediates the other kernels
/// produced: radii `r`, offsets vs L `off`, offsets vs R_a `ra`,
/// projections `dot` (may be null when !guard). A lane that fails any
/// test ends the run — the caller's scalar loop re-decides that point
/// with full semantics, so this kernel only needs to be conservative,
/// never creative. NaN fails every test, like every scalar comparison.
std::size_t CountExtendAccept(const double* r, const double* off,
                              const double* ra, const double* dot,
                              std::size_t n, const ExtendAcceptParams& params);

}  // namespace operb::geo::simd

#endif  // OPERB_GEO_SIMD_H_
