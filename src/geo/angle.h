#ifndef OPERB_GEO_ANGLE_H_
#define OPERB_GEO_ANGLE_H_

#include <cmath>
#include <numbers>

namespace operb::geo {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Normalizes an angle to [0, 2*pi). This is the domain the paper uses for
/// a directed line segment's angle L.theta.
double NormalizeAngle2Pi(double theta);

/// Normalizes an angle to (-pi, pi]. Useful for signed angular
/// differences (turn angles).
double NormalizeAnglePi(double theta);

/// The included angle from direction `theta1` to direction `theta2`
/// as the paper defines it: L2.theta - L1.theta with both angles in
/// [0, 2*pi), so the result lies in (-2*pi, 2*pi).
double IncludedAngle(double theta1, double theta2);

/// Absolute turn angle between two directions, in [0, pi].
double AbsoluteTurnAngle(double theta1, double theta2);

/// Degrees/radians conversions (benchmarks sweep gamma_m in degrees as the
/// paper's Figure 19-(2) does).
constexpr double DegToRad(double deg) { return deg * kPi / 180.0; }
constexpr double RadToDeg(double rad) { return rad * 180.0 / kPi; }

}  // namespace operb::geo

#endif  // OPERB_GEO_ANGLE_H_
