#ifndef OPERB_GEO_SIMD_INTERNAL_H_
#define OPERB_GEO_SIMD_INTERNAL_H_

#include <cstddef>

#include "geo/point.h"
#include "geo/simd.h"

namespace operb::geo::simd::internal {

/// One implementation of the batch-kernel set. Each per-ISA translation
/// unit (simd_sse2.cc, simd_avx2.cc, simd_neon.cc) exports exactly one
/// table; on platforms where the ISA cannot be compiled the table's
/// pointers are null and the dispatcher treats the level as unsupported.
/// Keeping the intrinsics behind this table is what lets simd_avx2.cc
/// carry its own -mavx2 flag without AVX2 code leaking into TUs that run
/// on pre-AVX2 machines.
struct KernelTable {
  void (*signed_offsets)(const double* xs, const double* ys, std::size_t n,
                         Vec2 anchor, Vec2 unit_dir, double* out) = nullptr;
  void (*radii)(const double* xs, const double* ys, std::size_t n, Vec2 anchor,
                double* out) = nullptr;
  void (*dots)(const double* xs, const double* ys, std::size_t n, Vec2 anchor,
               Vec2 unit_dir, double* out) = nullptr;
  void (*stage_extend)(const double* xs, const double* ys, std::size_t n,
                       Vec2 anchor, Vec2 unit_dir, Vec2 ra_unit, bool want_dot,
                       double* r, double* off, double* ra,
                       double* dot) = nullptr;
  std::size_t (*count_within)(const double* xs, const double* ys,
                              std::size_t n, Vec2 anchor, Vec2 unit_dir,
                              double bound) = nullptr;
  std::size_t (*count_extend_accept)(const double* r, const double* off,
                                     const double* ra, const double* dot,
                                     std::size_t n,
                                     const ExtendAcceptParams& params) =
      nullptr;

  bool complete() const {
    return signed_offsets != nullptr && radii != nullptr && dots != nullptr &&
           stage_extend != nullptr && count_within != nullptr &&
           count_extend_accept != nullptr;
  }
};

extern const KernelTable kScalarTable;  // simd.cc (the oracle)
extern const KernelTable kSse2Table;    // simd_sse2.cc
extern const KernelTable kAvx2Table;    // simd_avx2.cc
extern const KernelTable kNeonTable;    // simd_neon.cc

}  // namespace operb::geo::simd::internal

#endif  // OPERB_GEO_SIMD_INTERNAL_H_
