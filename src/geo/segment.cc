#include "geo/segment.h"

#include <cstdio>

namespace operb::geo {

std::string DirectedSegment::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "[(%.4f, %.4f) -> (%.4f, %.4f)]", start.x,
                start.y, end.x, end.y);
  return buf;
}

std::string AnchoredLine::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "{anchor=(%.4f, %.4f), |L|=%.4f, theta=%.6f}",
                anchor.x, anchor.y, length, theta);
  return buf;
}

}  // namespace operb::geo
