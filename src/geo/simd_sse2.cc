// SSE2 bodies of the geo::simd batch kernels: 2 x f64 per vector. SSE2 is
// part of the x86-64 baseline ISA, so this TU needs no special compile
// flags — the #if below only excludes non-x86 builds. Every arithmetic
// step mirrors the scalar kernel operand-for-operand (sub, mul, sub/add,
// sqrt — no reassociation, no FMA), so each lane rounds exactly like the
// scalar oracle; see DESIGN.md §12 for the argument.

#include "geo/distance.h"
#include "geo/simd_internal.h"

#if defined(__SSE2__) || defined(_M_X64)

#include <emmintrin.h>

namespace operb::geo::simd::internal {
namespace {

void SignedOffsetsSse2(const double* xs, const double* ys, std::size_t n,
                       Vec2 anchor, Vec2 unit_dir, double* out) {
  const __m128d ax = _mm_set1_pd(anchor.x);
  const __m128d ay = _mm_set1_pd(anchor.y);
  const __m128d ux = _mm_set1_pd(unit_dir.x);
  const __m128d uy = _mm_set1_pd(unit_dir.y);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d rx = _mm_sub_pd(_mm_loadu_pd(xs + i), ax);
    const __m128d ry = _mm_sub_pd(_mm_loadu_pd(ys + i), ay);
    const __m128d cross =
        _mm_sub_pd(_mm_mul_pd(ux, ry), _mm_mul_pd(uy, rx));
    _mm_storeu_pd(out + i, cross);
  }
  for (; i < n; ++i) {
    out[i] = SignedPointToLineOffsetDir({xs[i], ys[i]}, anchor, unit_dir);
  }
}

void RadiiSse2(const double* xs, const double* ys, std::size_t n, Vec2 anchor,
               double* out) {
  const __m128d ax = _mm_set1_pd(anchor.x);
  const __m128d ay = _mm_set1_pd(anchor.y);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d rx = _mm_sub_pd(_mm_loadu_pd(xs + i), ax);
    const __m128d ry = _mm_sub_pd(_mm_loadu_pd(ys + i), ay);
    const __m128d sq =
        _mm_add_pd(_mm_mul_pd(rx, rx), _mm_mul_pd(ry, ry));
    _mm_storeu_pd(out + i, _mm_sqrt_pd(sq));
  }
  for (; i < n; ++i) {
    out[i] = Distance({xs[i], ys[i]}, anchor);
  }
}

void DotsSse2(const double* xs, const double* ys, std::size_t n, Vec2 anchor,
              Vec2 unit_dir, double* out) {
  const __m128d ax = _mm_set1_pd(anchor.x);
  const __m128d ay = _mm_set1_pd(anchor.y);
  const __m128d ux = _mm_set1_pd(unit_dir.x);
  const __m128d uy = _mm_set1_pd(unit_dir.y);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d rx = _mm_sub_pd(_mm_loadu_pd(xs + i), ax);
    const __m128d ry = _mm_sub_pd(_mm_loadu_pd(ys + i), ay);
    const __m128d dot = _mm_add_pd(_mm_mul_pd(ux, rx), _mm_mul_pd(uy, ry));
    _mm_storeu_pd(out + i, dot);
  }
  for (; i < n; ++i) {
    out[i] = unit_dir.Dot(Vec2{xs[i], ys[i]} - anchor);
  }
}

void StageExtendSse2(const double* xs, const double* ys, std::size_t n,
                     Vec2 anchor, Vec2 unit_dir, Vec2 ra_unit, bool want_dot,
                     double* r, double* off, double* ra, double* dot) {
  const __m128d ax = _mm_set1_pd(anchor.x);
  const __m128d ay = _mm_set1_pd(anchor.y);
  const __m128d ux = _mm_set1_pd(unit_dir.x);
  const __m128d uy = _mm_set1_pd(unit_dir.y);
  const __m128d rax = _mm_set1_pd(ra_unit.x);
  const __m128d ray = _mm_set1_pd(ra_unit.y);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d rx = _mm_sub_pd(_mm_loadu_pd(xs + i), ax);
    const __m128d ry = _mm_sub_pd(_mm_loadu_pd(ys + i), ay);
    _mm_storeu_pd(r + i,
                  _mm_sqrt_pd(_mm_add_pd(_mm_mul_pd(rx, rx),
                                         _mm_mul_pd(ry, ry))));
    _mm_storeu_pd(off + i,
                  _mm_sub_pd(_mm_mul_pd(ux, ry), _mm_mul_pd(uy, rx)));
    _mm_storeu_pd(ra + i,
                  _mm_sub_pd(_mm_mul_pd(rax, ry), _mm_mul_pd(ray, rx)));
    if (want_dot) {
      _mm_storeu_pd(dot + i,
                    _mm_add_pd(_mm_mul_pd(ux, rx), _mm_mul_pd(uy, ry)));
    }
  }
  for (; i < n; ++i) {
    const Vec2 p{xs[i], ys[i]};
    r[i] = Distance(p, anchor);
    off[i] = SignedPointToLineOffsetDir(p, anchor, unit_dir);
    ra[i] = SignedPointToLineOffsetDir(p, anchor, ra_unit);
    if (want_dot) dot[i] = unit_dir.Dot(p - anchor);
  }
}

std::size_t CountWithinSse2(const double* xs, const double* ys, std::size_t n,
                            Vec2 anchor, Vec2 unit_dir, double bound) {
  const __m128d ax = _mm_set1_pd(anchor.x);
  const __m128d ay = _mm_set1_pd(anchor.y);
  const __m128d ux = _mm_set1_pd(unit_dir.x);
  const __m128d uy = _mm_set1_pd(unit_dir.y);
  const __m128d sign_mask = _mm_set1_pd(-0.0);
  const __m128d vbound = _mm_set1_pd(bound);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d rx = _mm_sub_pd(_mm_loadu_pd(xs + i), ax);
    const __m128d ry = _mm_sub_pd(_mm_loadu_pd(ys + i), ay);
    const __m128d cross =
        _mm_sub_pd(_mm_mul_pd(ux, ry), _mm_mul_pd(uy, rx));
    const __m128d dist = _mm_andnot_pd(sign_mask, cross);  // fabs
    // Ordered quiet <=: NaN lanes compare false, like the scalar test.
    const int mask = _mm_movemask_pd(_mm_cmple_pd(dist, vbound));
    if (mask != 0x3) {
      return i + static_cast<std::size_t>(
                     __builtin_ctz(static_cast<unsigned>(~mask & 0x3)));
    }
  }
  for (; i < n; ++i) {
    const double d = PointToLineDistanceDir({xs[i], ys[i]}, anchor, unit_dir);
    if (!(d <= bound)) return i;
  }
  return n;
}

std::size_t CountExtendAcceptSse2(const double* r, const double* off,
                                  const double* ra, const double* dot,
                                  std::size_t n,
                                  const ExtendAcceptParams& p) {
  if (!p.sum_ok) return 0;
  const __m128d zero = _mm_setzero_pd();
  const __m128d sign_mask = _mm_set1_pd(-0.0);
  const __m128d len = _mm_set1_pd(p.length);
  const __m128d slack = _mm_set1_pd(p.slack);
  const __m128d dpm = _mm_set1_pd(p.d_plus_max);
  const __m128d dmm = _mm_set1_pd(p.d_minus_max);
  const __m128d zeta = _mm_set1_pd(p.zeta);
  const __m128d dr_plus = _mm_set1_pd(p.drift_plus);
  const __m128d dr_minus = _mm_set1_pd(p.drift_minus);
  const __m128d dr_back = _mm_set1_pd(p.drift_back);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d vr = _mm_loadu_pd(r + i);
    const __m128d vo = _mm_loadu_pd(off + i);
    const __m128d vra = _mm_loadu_pd(ra + i);
    // All compares are ordered quiet: NaN lanes fail, like the scalar
    // comparisons they mirror.
    const __m128d inactive = _mm_cmple_pd(_mm_sub_pd(vr, len), slack);
    const __m128d pos = _mm_cmpge_pd(vo, zero);
    const __m128d neg_off = _mm_xor_pd(vo, sign_mask);
    const __m128d off_ok =
        _mm_or_pd(_mm_and_pd(pos, _mm_cmple_pd(vo, dpm)),
                  _mm_andnot_pd(pos, _mm_cmple_pd(neg_off, dmm)));
    const __m128d ra_ok =
        _mm_cmple_pd(_mm_andnot_pd(sign_mask, vra), zeta);
    __m128d accept = _mm_and_pd(inactive, _mm_and_pd(off_ok, ra_ok));
    if (p.guard) {
      const __m128d vd = _mm_loadu_pd(dot + i);
      const __m128d ahead = _mm_cmpge_pd(vd, zero);
      const __m128d fwd_ok =
          _mm_or_pd(_mm_and_pd(pos, _mm_cmple_pd(vo, dr_plus)),
                    _mm_andnot_pd(pos, _mm_cmple_pd(neg_off, dr_minus)));
      const __m128d drift_ok =
          _mm_or_pd(_mm_and_pd(ahead, fwd_ok),
                    _mm_andnot_pd(ahead, _mm_cmple_pd(vr, dr_back)));
      accept = _mm_and_pd(accept, drift_ok);
    }
    const int mask = _mm_movemask_pd(accept);
    if (mask != 0x3) {
      return i + static_cast<std::size_t>(
                     __builtin_ctz(static_cast<unsigned>(~mask & 0x3)));
    }
  }
  for (; i < n; ++i) {
    if (!(r[i] - p.length <= p.slack)) return i;
    const double o = off[i];
    const bool off_ok =
        o >= 0.0 ? o <= p.d_plus_max : -o <= p.d_minus_max;
    if (!off_ok) return i;
    if (!(std::fabs(ra[i]) <= p.zeta)) return i;
    if (p.guard) {
      const double d = dot[i];
      const bool drift_ok =
          d >= 0.0 ? (o >= 0.0 ? o <= p.drift_plus : -o <= p.drift_minus)
                   : r[i] <= p.drift_back;
      if (!drift_ok) return i;
    }
  }
  return n;
}

}  // namespace

const KernelTable kSse2Table = {SignedOffsetsSse2,    RadiiSse2,
                                DotsSse2,             StageExtendSse2,
                                CountWithinSse2,      CountExtendAcceptSse2};

}  // namespace operb::geo::simd::internal

#else  // !__SSE2__

namespace operb::geo::simd::internal {
const KernelTable kSse2Table = {};
}  // namespace operb::geo::simd::internal

#endif
