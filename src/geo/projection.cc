#include "geo/projection.h"

#include <cmath>

#include "geo/angle.h"

namespace operb::geo {

namespace {
constexpr double kEarthRadiusMeters = 6371008.8;  // IUGG mean radius
}  // namespace

double HaversineMeters(LatLon a, LatLon b) {
  const double phi1 = DegToRad(a.lat);
  const double phi2 = DegToRad(b.lat);
  const double dphi = DegToRad(b.lat - a.lat);
  const double dlambda = DegToRad(b.lon - a.lon);
  const double s = std::sin(dphi / 2.0);
  const double u = std::sin(dlambda / 2.0);
  const double h = s * s + std::cos(phi1) * std::cos(phi2) * u * u;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

LocalProjector::LocalProjector(LatLon reference) : reference_(reference) {
  meters_per_deg_lat_ = kEarthRadiusMeters * kPi / 180.0;
  meters_per_deg_lon_ =
      meters_per_deg_lat_ * std::cos(DegToRad(reference.lat));
}

Vec2 LocalProjector::Project(LatLon c) const {
  return {(c.lon - reference_.lon) * meters_per_deg_lon_,
          (c.lat - reference_.lat) * meters_per_deg_lat_};
}

LatLon LocalProjector::Unproject(Vec2 p) const {
  LatLon c;
  c.lon = reference_.lon + p.x / meters_per_deg_lon_;
  c.lat = reference_.lat + p.y / meters_per_deg_lat_;
  return c;
}

}  // namespace operb::geo
