#ifndef OPERB_GEO_LINE_H_
#define OPERB_GEO_LINE_H_

#include <optional>

#include "geo/point.h"

namespace operb::geo {

/// Result of intersecting two parametric lines
///   a0 + s * da   and   b0 + t * db.
struct LineIntersection {
  Vec2 point;
  /// Parameter along the first line (in units of |da|... i.e. the raw `s`).
  double s = 0.0;
  /// Parameter along the second line.
  double t = 0.0;
};

/// Intersects two infinite lines given in point+direction form. Returns
/// nullopt when the directions are parallel within `eps` (relative to the
/// direction magnitudes), which includes degenerate zero directions.
///
/// The parameters let the caller reason about *where* on each line the
/// intersection lies; OPERB-A's patch-point conditions are expressed as
/// constraints on them.
std::optional<LineIntersection> IntersectLines(Vec2 a0, Vec2 da, Vec2 b0,
                                               Vec2 db, double eps = 1e-12);

}  // namespace operb::geo

#endif  // OPERB_GEO_LINE_H_
