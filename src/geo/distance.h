#ifndef OPERB_GEO_DISTANCE_H_
#define OPERB_GEO_DISTANCE_H_

#include <cmath>

#include "geo/point.h"
#include "geo/segment.h"

namespace operb::geo {

/// Trig-free hot-path kernels: distance / signed offset of `p` against the
/// infinite line through `anchor` with *unit* direction `unit_dir`. These
/// are what the one-pass simplifiers run per input point; callers cache
/// the unit vector (AnchoredLine::dir, FittingFunction's internal cache)
/// and refresh it only when the line actually rotates, so the per-point
/// cost is a single cross product. Precondition: |unit_dir| == 1.
inline double PointToLineDistanceDir(Vec2 p, Vec2 anchor, Vec2 unit_dir) {
  return std::fabs(unit_dir.Cross(p - anchor));
}

/// Signed variant of PointToLineDistanceDir: positive when `p` lies to the
/// left of `unit_dir`.
inline double SignedPointToLineOffsetDir(Vec2 p, Vec2 anchor, Vec2 unit_dir) {
  return unit_dir.Cross(p - anchor);
}

/// Distance from point `p` to the infinite line through `a` and `b`.
///
/// This is the paper's d(P, L): "the Euclidean distance from Pi to the
/// line PsPe, commonly adopted by most existing LS methods". If the line
/// is degenerate (a == b) the distance to the point `a` is returned.
double PointToLineDistance(Vec2 p, Vec2 a, Vec2 b);

/// Distance from `p` to the infinite line through `anchor` with direction
/// `theta`. Zero-length anchored lines still have a direction, so no
/// degenerate case arises; callers that want "distance to a not-yet-
/// directed L0" should use Distance(p, anchor) explicitly. Reads the
/// line's cached unit vector — no trig.
double PointToLineDistance(Vec2 p, const AnchoredLine& line);

/// Distance from `p` to the closed segment [a, b] (clamped projection).
double PointToSegmentDistance(Vec2 p, Vec2 a, Vec2 b);

/// Signed perpendicular offset of `p` from the directed line a->b:
/// positive when `p` lies to the left of the direction of travel.
/// Degenerate lines return +Distance(p, a).
double SignedPointToLineOffset(Vec2 p, Vec2 a, Vec2 b);

/// Signed offset against an anchored line's direction (cached unit
/// vector — no trig).
double SignedPointToLineOffset(Vec2 p, const AnchoredLine& line);

/// Parameter of the orthogonal projection of `p` onto the line a->b
/// (0 at `a`, 1 at `b`); 0 for degenerate lines.
double ProjectionParameter(Vec2 p, Vec2 a, Vec2 b);

/// Synchronous (time-aware) Euclidean distance used by OPW-SED [15]:
/// distance from `p` to the point obtained by interpolating the segment
/// `a`->`b` linearly in time at p.t. Falls back to the distance to `a`
/// when the segment spans no time.
double SynchronousEuclideanDistance(const Point& p, const Point& a,
                                    const Point& b);

}  // namespace operb::geo

#endif  // OPERB_GEO_DISTANCE_H_
