#ifndef OPERB_GEO_PROJECTION_H_
#define OPERB_GEO_PROJECTION_H_

#include "geo/point.h"

namespace operb::geo {

/// A WGS-84 coordinate in degrees.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;
};

/// Great-circle distance in meters between two WGS-84 coordinates
/// (haversine formula, spherical earth of mean radius).
double HaversineMeters(LatLon a, LatLon b);

/// Equirectangular projection around a reference coordinate.
///
/// Error bounds in the paper are expressed in meters (zeta = 10..100 m)
/// while GPS logs carry degrees. For city-scale extents (tens of km) the
/// equirectangular local projection distorts distances by well under 0.1%,
/// far below GPS noise, so all simplifiers run in this projected plane.
class LocalProjector {
 public:
  explicit LocalProjector(LatLon reference);

  /// Meters east/north of the reference.
  Vec2 Project(LatLon c) const;

  /// Inverse of Project().
  LatLon Unproject(Vec2 p) const;

  LatLon reference() const { return reference_; }

 private:
  LatLon reference_;
  double meters_per_deg_lat_;
  double meters_per_deg_lon_;
};

}  // namespace operb::geo

#endif  // OPERB_GEO_PROJECTION_H_
