#ifndef OPERB_GEO_POLYGON_CLIP_H_
#define OPERB_GEO_POLYGON_CLIP_H_

#include <vector>

#include "geo/point.h"

namespace operb::geo {

/// A half-plane { p : n . p <= c } described by an outward... rather an
/// inward test: Contains(p) is true when p satisfies the inequality.
struct HalfPlane {
  Vec2 normal;  ///< need not be unit length
  double offset = 0.0;

  /// Half-plane of points on the *left* of the directed line a->b
  /// (inclusive of the line itself).
  static HalfPlane LeftOf(Vec2 a, Vec2 b);
  /// Half-plane of points on the *right* of the directed line a->b.
  static HalfPlane RightOf(Vec2 a, Vec2 b);

  bool Contains(Vec2 p) const { return normal.Dot(p) <= offset + 1e-9; }

  /// Signed crossing value; <= 0 inside.
  double Evaluate(Vec2 p) const { return normal.Dot(p) - offset; }
};

/// Clips a convex polygon (counter-clockwise vertex list) against a
/// half-plane using the Sutherland–Hodgman step. Returns the clipped
/// polygon (possibly empty).
///
/// BQS uses this to derive the vertices of the convex region
/// (bounding box ∩ angular wedge) whose corner distances upper-bound the
/// distance of every buffered point to the current candidate line.
std::vector<Vec2> ClipPolygon(const std::vector<Vec2>& polygon,
                              const HalfPlane& hp);

/// Convenience: clip by several half-planes in sequence.
std::vector<Vec2> ClipPolygon(std::vector<Vec2> polygon,
                              const std::vector<HalfPlane>& hps);

}  // namespace operb::geo

#endif  // OPERB_GEO_POLYGON_CLIP_H_
