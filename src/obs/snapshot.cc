#include "obs/snapshot.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace operb::obs {

namespace {

void AppendU64(std::string* out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendI64(std::string* out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

/// Metric names are dotted identifiers (no quotes/backslashes/control
/// bytes), so JSON escaping is the identity; assert the invariant
/// instead of implementing an escaper nothing can reach.
void AppendJsonString(std::string* out, std::string_view s) {
  *out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
      *out += '_';
    } else {
      *out += c;
    }
  }
  *out += '"';
}

const MetricsRegistry& ResolveRegistry(const SnapshotOptions& options) {
  return options.registry != nullptr ? *options.registry
                                     : MetricsRegistry::Global();
}

const TraceRecorder& ResolveRecorder(const SnapshotOptions& options) {
  return options.recorder != nullptr ? *options.recorder
                                     : TraceRecorder::Global();
}

}  // namespace

std::string RenderSnapshotText(const SnapshotOptions& options) {
  const MetricsRegistry& registry = ResolveRegistry(options);
  const TraceRecorder& recorder = ResolveRecorder(options);
  std::string out = "operb metrics snapshot (schema v";
  out += std::to_string(kSnapshotSchemaVersion);
  out += ")\n";
  for (const auto& [name, value] : registry.CounterValues()) {
    out += "counter    ";
    out += name;
    out += " = ";
    AppendU64(&out, value);
    out += '\n';
  }
  for (const auto& [name, value] : registry.GaugeValues()) {
    out += "gauge      ";
    out += name;
    out += " = ";
    AppendI64(&out, value);
    out += '\n';
  }
  for (const auto& [name, value] : registry.MaxGaugeValues()) {
    out += "max_gauge  ";
    out += name;
    out += " = ";
    AppendI64(&out, value);
    out += '\n';
  }
  for (const auto& [name, h] : registry.HistogramValues()) {
    out += "histogram  ";
    out += name;
    out += ": count=";
    AppendU64(&out, h.count);
    out += " sum=";
    AppendU64(&out, h.sum);
    out += " p50<=";
    AppendU64(&out, static_cast<std::uint64_t>(h.ApproxPercentile(0.50)));
    out += " p99<=";
    AppendU64(&out, static_cast<std::uint64_t>(h.ApproxPercentile(0.99)));
    out += '\n';
  }
  out += "trace      recorded=";
  AppendU64(&out, recorder.recorded());
  out += " dropped=";
  AppendU64(&out, recorder.dropped());
  out += '\n';
  return out;
}

std::string RenderSnapshotJson(const SnapshotOptions& options) {
  const MetricsRegistry& registry = ResolveRegistry(options);
  const TraceRecorder& recorder = ResolveRecorder(options);
  std::string out = "{\n  \"schema\": ";
  AppendJsonString(&out, kSnapshotSchemaName);
  out += ",\n  \"schema_version\": ";
  out += std::to_string(kSnapshotSchemaVersion);

  const auto emit_map = [&out](const char* section, const auto& entries,
                               auto&& append_value) {
    out += ",\n  \"";
    out += section;
    out += "\": {";
    bool first = true;
    for (const auto& [name, value] : entries) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      AppendJsonString(&out, name);
      out += ": ";
      append_value(value);
    }
    out += first ? "}" : "\n  }";
  };

  emit_map("counters", registry.CounterValues(),
           [&out](std::uint64_t v) { AppendU64(&out, v); });
  emit_map("gauges", registry.GaugeValues(),
           [&out](std::int64_t v) { AppendI64(&out, v); });
  emit_map("max_gauges", registry.MaxGaugeValues(),
           [&out](std::int64_t v) { AppendI64(&out, v); });
  emit_map("histograms", registry.HistogramValues(),
           [&out](const HistogramSnapshot& h) {
             out += "{\"count\": ";
             AppendU64(&out, h.count);
             out += ", \"sum\": ";
             AppendU64(&out, h.sum);
             out += ", \"buckets\": [";
             // Trailing zero buckets are elided — the parser pads back.
             std::size_t last = HistogramSnapshot::kBuckets;
             while (last > 0 && h.buckets[last - 1] == 0) --last;
             for (std::size_t b = 0; b < last; ++b) {
               if (b > 0) out += ", ";
               AppendU64(&out, h.buckets[b]);
             }
             out += "]}";
           });

  out += ",\n  \"trace\": {\"recorded\": ";
  AppendU64(&out, recorder.recorded());
  out += ", \"dropped\": ";
  AppendU64(&out, recorder.dropped());
  out += "}\n}\n";
  return out;
}

Status AtomicWriteFile(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + tmp + ": " +
                           std::strerror(errno));
  }
  const bool wrote =
      content.empty() ||
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " over " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status WriteSnapshotJson(const std::string& path,
                         const SnapshotOptions& options,
                         const AtomicWriteFn& write) {
  const std::string json = RenderSnapshotJson(options);
  if (write) return write(path, json);
  return AtomicWriteFile(path, json);
}

// ---------------------------------------------------------------------------
// Parser: a recursive-descent reader for exactly the document shape
// RenderSnapshotJson emits (strings, integers, flat maps, one level of
// nesting, arrays of integers). Whitespace-tolerant; everything else is
// kCorruption.
// ---------------------------------------------------------------------------

namespace {

class SnapshotParser {
 public:
  explicit SnapshotParser(std::string_view json) : s_(json) {}

  Result<ParsedSnapshot> Parse() {
    ParsedSnapshot out;
    if (!Consume('{')) return Corrupt("expected '{'");
    bool first = true;
    while (true) {
      SkipWs();
      if (Consume('}')) break;
      if (!first && !Consume(',')) return Corrupt("expected ','");
      first = false;
      std::string key;
      if (!ParseString(&key)) return Corrupt("expected key string");
      if (!Consume(':')) return Corrupt("expected ':'");
      if (key == "schema") {
        if (!ParseString(&out.schema)) return Corrupt("bad schema");
      } else if (key == "schema_version") {
        std::uint64_t v = 0;
        if (!ParseU64(&v)) return Corrupt("bad schema_version");
        out.schema_version = static_cast<int>(v);
      } else if (key == "counters") {
        if (!ParseU64Map(&out.counters)) return Corrupt("bad counters");
      } else if (key == "gauges") {
        if (!ParseI64Map(&out.gauges)) return Corrupt("bad gauges");
      } else if (key == "max_gauges") {
        if (!ParseI64Map(&out.max_gauges)) return Corrupt("bad max_gauges");
      } else if (key == "histograms") {
        if (!ParseHistogramMap(&out.histograms)) {
          return Corrupt("bad histograms");
        }
      } else if (key == "trace") {
        if (!ParseTrace(&out)) return Corrupt("bad trace");
      } else {
        return Corrupt("unknown key '" + key + "'");
      }
    }
    SkipWs();
    if (i_ != s_.size()) return Corrupt("trailing bytes");
    if (out.schema != kSnapshotSchemaName) {
      return Corrupt("unexpected schema '" + out.schema + "'");
    }
    return out;
  }

 private:
  Status Corrupt(const std::string& what) {
    return Status::Corruption("metrics snapshot: " + what + " at byte " +
                              std::to_string(i_));
  }

  void SkipWs() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\n' ||
                              s_[i_] == '\t' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') return false;  // the emitter never escapes
      *out += s_[i_++];
    }
    if (i_ == s_.size()) return false;
    ++i_;  // closing quote
    return true;
  }

  bool ParseU64(std::uint64_t* out) {
    SkipWs();
    const std::size_t start = i_;
    std::uint64_t v = 0;
    while (i_ < s_.size() && s_[i_] >= '0' && s_[i_] <= '9') {
      v = v * 10 + static_cast<std::uint64_t>(s_[i_] - '0');
      ++i_;
    }
    if (i_ == start) return false;
    *out = v;
    return true;
  }

  bool ParseI64(std::int64_t* out) {
    SkipWs();
    const bool negative = i_ < s_.size() && s_[i_] == '-';
    if (negative) ++i_;
    std::uint64_t magnitude = 0;
    if (!ParseU64(&magnitude)) return false;
    *out = negative ? -static_cast<std::int64_t>(magnitude)
                    : static_cast<std::int64_t>(magnitude);
    return true;
  }

  template <typename Map, typename ParseValue>
  bool ParseMap(Map* out, ParseValue&& parse_value) {
    if (!Consume('{')) return false;
    bool first = true;
    while (true) {
      SkipWs();
      if (Consume('}')) return true;
      if (!first && !Consume(',')) return false;
      first = false;
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      typename Map::mapped_type value{};
      if (!parse_value(&value)) return false;
      (*out)[key] = std::move(value);
    }
  }

  bool ParseU64Map(std::map<std::string, std::uint64_t>* out) {
    return ParseMap(out, [this](std::uint64_t* v) { return ParseU64(v); });
  }

  bool ParseI64Map(std::map<std::string, std::int64_t>* out) {
    return ParseMap(out, [this](std::int64_t* v) { return ParseI64(v); });
  }

  bool ParseHistogramMap(
      std::map<std::string, ParsedSnapshot::Histogram>* out) {
    return ParseMap(out, [this](ParsedSnapshot::Histogram* h) {
      if (!Consume('{')) return false;
      bool first = true;
      while (true) {
        SkipWs();
        if (Consume('}')) return true;
        if (!first && !Consume(',')) return false;
        first = false;
        std::string key;
        if (!ParseString(&key) || !Consume(':')) return false;
        if (key == "count") {
          if (!ParseU64(&h->count)) return false;
        } else if (key == "sum") {
          if (!ParseU64(&h->sum)) return false;
        } else if (key == "buckets") {
          if (!Consume('[')) return false;
          if (!Consume(']')) {
            while (true) {
              std::uint64_t v = 0;
              if (!ParseU64(&v)) return false;
              h->buckets.push_back(v);
              if (Consume(']')) break;
              if (!Consume(',')) return false;
            }
          }
          h->buckets.resize(HistogramSnapshot::kBuckets, 0);
        } else {
          return false;
        }
      }
    });
  }

  bool ParseTrace(ParsedSnapshot* out) {
    if (!Consume('{')) return false;
    bool first = true;
    while (true) {
      SkipWs();
      if (Consume('}')) return true;
      if (!first && !Consume(',')) return false;
      first = false;
      std::string key;
      if (!ParseString(&key) || !Consume(':')) return false;
      if (key == "recorded") {
        if (!ParseU64(&out->trace_recorded)) return false;
      } else if (key == "dropped") {
        if (!ParseU64(&out->trace_dropped)) return false;
      } else {
        return false;
      }
    }
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

}  // namespace

Result<ParsedSnapshot> ParseSnapshotJson(std::string_view json) {
  return SnapshotParser(json).Parse();
}

}  // namespace operb::obs
