#include "obs/trace.h"

namespace operb::obs {

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* const recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::Ring* TraceRecorder::RingForThisThread() {
  const std::thread::id me = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = by_thread_.find(me); it != by_thread_.end()) {
    return it->second;
  }
  rings_.emplace_back(ring_capacity_);
  Ring* ring = &rings_.back();
  by_thread_.emplace(me, ring);
  return ring;
}

void TraceRecorder::Record(const TraceEvent& event) {
  Ring* ring = RingForThisThread();
  std::lock_guard<std::mutex> lock(ring->mu);
  if (ring->size == ring->events.size()) {
    ++ring->dropped;  // `next` already points at the oldest event
  } else {
    ++ring->size;
  }
  ring->events[ring->next] = event;
  ring->next = (ring->next + 1) % ring->events.size();
  ++ring->recorded;
}

std::vector<TraceEvent> TraceRecorder::Drain() {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (Ring& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring.mu);
    // Oldest-first: when full, `next` is the oldest slot; otherwise the
    // ring starts at 0.
    const std::size_t capacity = ring.events.size();
    const std::size_t first =
        ring.size == capacity ? ring.next : (ring.next - ring.size);
    for (std::size_t i = 0; i < ring.size; ++i) {
      out.push_back(ring.events[(first + i) % capacity]);
    }
    ring.size = 0;
    ring.next = 0;
  }
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const Ring& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring.mu);
    total += ring.dropped;
  }
  return total;
}

std::uint64_t TraceRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const Ring& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring.mu);
    total += ring.recorded;
  }
  return total;
}

}  // namespace operb::obs
