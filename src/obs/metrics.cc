#include "obs/metrics.h"

#include <algorithm>

namespace operb::obs {

double HistogramSnapshot::ApproxPercentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) >= target && cumulative > 0) {
      // Upper edge of the bucket: 0 for the zero bucket, 2^b - 1 above.
      if (b == 0) return 0.0;
      if (b >= 64) return static_cast<double>(~std::uint64_t{0});
      return static_cast<double>((std::uint64_t{1} << b) - 1);
    }
  }
  return static_cast<double>(~std::uint64_t{0});
}

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
  count += other.count;
  sum += other.sum;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  return GetOrCreate(&counters_, name);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  return GetOrCreate(&gauges_, name);
}

MaxGauge* MetricsRegistry::GetMaxGauge(std::string_view name) {
  return GetOrCreate(&max_gauges_, name);
}

LatencyHistogram* MetricsRegistry::GetHistogram(std::string_view name) {
  return GetOrCreate(&histograms_, name);
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.by_name.size());
  for (const auto& [name, c] : counters_.by_name) {
    out.emplace_back(name, c->Value());
  }
  return out;
}

std::vector<std::pair<std::string, std::int64_t>>
MetricsRegistry::GaugeValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(gauges_.by_name.size());
  for (const auto& [name, g] : gauges_.by_name) {
    out.emplace_back(name, g->Value());
  }
  return out;
}

std::vector<std::pair<std::string, std::int64_t>>
MetricsRegistry::MaxGaugeValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(max_gauges_.by_name.size());
  for (const auto& [name, g] : max_gauges_.by_name) {
    out.emplace_back(name, g->Value());
  }
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::HistogramValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.by_name.size());
  for (const auto& [name, h] : histograms_.by_name) {
    out.emplace_back(name, h->Snapshot());
  }
  return out;
}

}  // namespace operb::obs
