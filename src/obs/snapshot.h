#ifndef OPERB_OBS_SNAPSHOT_H_
#define OPERB_OBS_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

/// Snapshot exporter: renders the registry (and the trace recorder's
/// drop/record totals) as human text or a versioned JSON document, and
/// writes the JSON with the manifest's temp-file+rename discipline so a
/// reader never observes a torn snapshot.
///
/// Consistency caveat (DESIGN.md §10): a snapshot reads each instrument
/// atomically but does not stop the writers, so two instruments in one
/// snapshot may disagree by in-flight work (e.g. `points_routed` can be
/// momentarily ahead of `segments_appended`). Monotone counters never
/// go backwards across snapshots.

namespace operb::obs {

/// Bumped whenever the JSON layout changes shape.
inline constexpr int kSnapshotSchemaVersion = 1;
inline constexpr std::string_view kSnapshotSchemaName =
    "operb-metrics-snapshot";

/// What to render. Null members default to the process-wide instances.
struct SnapshotOptions {
  const MetricsRegistry* registry = nullptr;
  const TraceRecorder* recorder = nullptr;
};

/// Human-readable dump, one instrument per line, sorted by name.
std::string RenderSnapshotText(const SnapshotOptions& options = {});

/// Versioned JSON document (sorted names, stable layout):
///   {"schema": "operb-metrics-snapshot", "schema_version": 1,
///    "counters": {...}, "gauges": {...}, "max_gauges": {...},
///    "histograms": {name: {"count": N, "sum": N, "buckets": [...]}},
///    "trace": {"recorded": N, "dropped": N}}
std::string RenderSnapshotJson(const SnapshotOptions& options = {});

/// Writes `content` to `path` atomically: `path.tmp` then rename. Used
/// as the default writer below; layers that own a store::Env route
/// through it instead via the `write` parameter (that is how the fault
/// matrix injects snapshot failures without obs depending on store).
using AtomicWriteFn =
    std::function<Status(const std::string& path, std::string_view content)>;

/// The stdio implementation of AtomicWriteFn.
Status AtomicWriteFile(const std::string& path, std::string_view content);

/// Renders the JSON snapshot and writes it via `write` (stdio temp-file
/// +rename when empty). Never throws; failures come back as Status.
Status WriteSnapshotJson(const std::string& path,
                         const SnapshotOptions& options = {},
                         const AtomicWriteFn& write = {});

/// A snapshot JSON document parsed back into values — the round-trip
/// counterpart of RenderSnapshotJson, used by tests and by tooling that
/// wants the numbers without a JSON library.
struct ParsedSnapshot {
  struct Histogram {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> buckets;
  };

  std::string schema;
  int schema_version = 0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, std::int64_t> max_gauges;
  std::map<std::string, Histogram> histograms;
  std::uint64_t trace_recorded = 0;
  std::uint64_t trace_dropped = 0;
};

/// Parses a RenderSnapshotJson document. Tolerates arbitrary
/// whitespace; rejects unknown top-level keys, wrong schema names and
/// malformed JSON with kCorruption.
Result<ParsedSnapshot> ParseSnapshotJson(std::string_view json);

}  // namespace operb::obs

#endif  // OPERB_OBS_SNAPSHOT_H_
