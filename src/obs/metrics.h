#ifndef OPERB_OBS_METRICS_H_
#define OPERB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stopwatch.h"

/// Lock-free process-wide metrics (DESIGN.md §10).
///
/// Instruments are named, append-only and immortal: a `MetricsRegistry`
/// hands out stable pointers that hot paths cache once at construction
/// and then update with relaxed atomics — no locks, no allocation, no
/// stores shared between writer threads (counters and gauges stripe
/// across cache-line-padded slots). Reads aggregate the slots; a
/// snapshot is therefore per-instrument atomic but not mutually
/// consistent across instruments (see the DESIGN.md caveat).
///
/// `OPERB_NO_METRICS` does NOT change this header's behavior — the
/// library is always fully functional so obs_test passes in every
/// config. The macro only flips `kMetricsEnabled`, which the
/// engine/store/pipeline call sites use to compile their
/// instrumentation out (`if constexpr (obs::kMetricsEnabled)`).

namespace operb::obs {

#ifdef OPERB_NO_METRICS
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

/// Slots per striped instrument. Threads are assigned round-robin, so
/// up to 16 writers never share a cache line; more wrap around.
inline constexpr std::size_t kInstrumentSlots = 16;

/// This thread's stripe index (round-robin at first use, then fixed).
inline std::size_t ThreadSlot() {
  thread_local const std::size_t slot = [] {
    static std::atomic<std::size_t> next{0};
    return next.fetch_add(1, std::memory_order_relaxed);
  }();
  return slot & (kInstrumentSlots - 1);
}

/// Monotone event counter. `Add` is a single relaxed fetch_add on this
/// thread's private cache line; `Value` sums the stripes. Relaxed
/// ordering is sound because the counter is monotone and carries no
/// inter-thread control dependency — see DESIGN.md §10.
class Counter {
 public:
  void Add(std::uint64_t n) {
    slots_[ThreadSlot()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  std::uint64_t Value() const {
    std::uint64_t sum = 0;
    for (const Slot& s : slots_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, kInstrumentSlots> slots_{};
};

/// Signed additive gauge (current level, e.g. live objects): same
/// striping as Counter, with Sub allowed. The aggregate is exact once
/// the writers quiesce; mid-flight reads can transiently undershoot.
class Gauge {
 public:
  void Add(std::int64_t n) {
    slots_[ThreadSlot()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Sub(std::int64_t n) { Add(-n); }

  std::int64_t Value() const {
    std::int64_t sum = 0;
    for (const Slot& s : slots_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::int64_t> v{0};
  };
  std::array<Slot, kInstrumentSlots> slots_{};
};

/// High-water mark: CAS-max on one atomic. Contention is bounded by the
/// observation rate (per batch, not per point, on the hot paths).
class MaxGauge {
 public:
  void Observe(std::int64_t v) {
    std::int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::int64_t Value() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> max_{0};
};

/// A point-in-time copy of one histogram, safe to merge and query.
struct HistogramSnapshot {
  /// Bucket b holds values whose bit_width is b: bucket 0 is the value
  /// 0, bucket b>0 covers [2^(b-1), 2^b).
  static constexpr std::size_t kBuckets = 65;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  /// The bucket a value lands in (== std::bit_width).
  static std::size_t BucketIndex(std::uint64_t v) {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  /// Smallest value bucket `b` can hold.
  static std::uint64_t BucketLowerBound(std::size_t b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  /// Upper-bound estimate of the p-quantile (p in [0,1]): the upper
  /// edge of the first bucket whose cumulative count reaches p*count.
  /// Exact to within one power of two — enough for latency triage.
  double ApproxPercentile(double p) const;

  void MergeFrom(const HistogramSnapshot& other);
};

/// Fixed-bucket log2 latency histogram. Record is three relaxed
/// fetch_adds and never allocates; buckets cover the full uint64 range
/// so no value is ever dropped or clamped.
class LatencyHistogram {
 public:
  void Record(std::uint64_t value) {
    buckets_[HistogramSnapshot::BucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot s;
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    s.count = Count();
    s.sum = Sum();
    return s;
  }

  void MergeFrom(const LatencyHistogram& other) {
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      buckets_[b].fetch_add(
          other.buckets_[b].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    count_.fetch_add(other.Count(), std::memory_order_relaxed);
    sum_.fetch_add(other.Sum(), std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, HistogramSnapshot::kBuckets>
      buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Records `NowNanos()`-deltas into a histogram on scope exit. A null
/// histogram makes the timer a no-op, so call sites can pass the
/// pointer they may or may not have acquired.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* hist)
      : hist_(hist), start_ns_(hist != nullptr ? NowNanos() : 0) {}
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->Record(static_cast<std::uint64_t>(NowNanos() - start_ns_));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyHistogram* hist_;
  std::int64_t start_ns_;
};

/// Name -> instrument directory. Get* creates on first use and returns
/// a pointer that stays valid for the registry's lifetime (deque
/// storage, instruments are never removed); callers cache it once and
/// hit the lock-free instrument directly afterwards. Distinct
/// instrument kinds live in distinct namespaces: a counter and a
/// histogram may share a name (they don't, by convention).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every production call site uses.
  /// Immortal (never destroyed), so worker threads may touch
  /// instruments during static destruction without UB.
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  MaxGauge* GetMaxGauge(std::string_view name);
  LatencyHistogram* GetHistogram(std::string_view name);

  /// Sorted-by-name value dumps for the snapshot exporter. Each value
  /// is individually atomic; the set is not mutually consistent.
  std::vector<std::pair<std::string, std::uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, std::int64_t>> GaugeValues() const;
  std::vector<std::pair<std::string, std::int64_t>> MaxGaugeValues() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> HistogramValues()
      const;

 private:
  template <typename T>
  struct Directory {
    std::map<std::string, T*, std::less<>> by_name;
    std::deque<T> storage;
  };

  template <typename T>
  T* GetOrCreate(Directory<T>* dir, std::string_view name) {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = dir->by_name.find(name); it != dir->by_name.end()) {
      return it->second;
    }
    dir->storage.emplace_back();
    T* created = &dir->storage.back();
    dir->by_name.emplace(std::string(name), created);
    return created;
  }

  mutable std::mutex mu_;
  Directory<Counter> counters_;
  Directory<Gauge> gauges_;
  Directory<MaxGauge> max_gauges_;
  Directory<LatencyHistogram> histograms_;
};

}  // namespace operb::obs

#endif  // OPERB_OBS_METRICS_H_
