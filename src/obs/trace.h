#ifndef OPERB_OBS_TRACE_H_
#define OPERB_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stopwatch.h"

/// Bounded trace recording (DESIGN.md §10).
///
/// A `TraceSpan` is an RAII interval: it stamps `NowNanos()` on
/// construction and records {name, start, end} into the recorder on
/// destruction. Each recording thread owns a fixed-capacity ring that
/// overwrites its oldest event when full and counts the overwrites —
/// a long run keeps the most recent window of activity per thread at
/// constant memory, never blocking or aborting the traced work.
///
/// Spans mark stage-grained work (pipeline stages, checkpoints, store
/// opens, compaction passes), not per-point work, so the per-record
/// mutexes here are off any hot loop.

namespace operb::obs {

/// One completed span. `name` must outlive the recorder — pass string
/// literals (the recorder stores the pointer, not a copy, so the
/// record path never allocates once the thread's ring exists).
struct TraceEvent {
  const char* name = nullptr;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
};

/// Owns one bounded ring per recording thread. Rings are created on a
/// thread's first record and never freed (deque storage), so draining
/// after a worker pool exits still sees its events.
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 256;

  explicit TraceRecorder(std::size_t ring_capacity = kDefaultRingCapacity)
      : ring_capacity_(ring_capacity > 0 ? ring_capacity : 1) {}
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder (immortal, like MetricsRegistry).
  static TraceRecorder& Global();

  /// Appends to this thread's ring, overwriting the oldest event (and
  /// bumping the drop counter) when the ring is full.
  void Record(const TraceEvent& event);

  /// Moves every ring's events out, oldest-first per ring, and clears
  /// the rings. Drop counters are cumulative and survive the drain.
  std::vector<TraceEvent> Drain();

  /// Events overwritten before anyone drained them, across all rings.
  std::uint64_t dropped() const;
  /// Total events ever recorded (including later-overwritten ones).
  std::uint64_t recorded() const;

  std::size_t ring_capacity() const { return ring_capacity_; }

 private:
  struct Ring {
    explicit Ring(std::size_t capacity) : events(capacity) {}
    mutable std::mutex mu;
    std::vector<TraceEvent> events;  // fixed capacity, circular
    std::size_t next = 0;            // write cursor
    std::size_t size = 0;            // valid events (<= capacity)
    std::uint64_t dropped = 0;
    std::uint64_t recorded = 0;
  };

  Ring* RingForThisThread();

  const std::size_t ring_capacity_;
  mutable std::mutex mu_;
  std::map<std::thread::id, Ring*> by_thread_;
  std::deque<Ring> rings_;
};

/// RAII span: records its interval into `recorder` (the global one by
/// default) when the scope exits. `name` must be a string literal (or
/// otherwise outlive the recorder).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, TraceRecorder* recorder = nullptr)
      : name_(name),
        recorder_(recorder != nullptr ? recorder : &TraceRecorder::Global()),
        start_ns_(NowNanos()) {}
  ~TraceSpan() { recorder_->Record({name_, start_ns_, NowNanos()}); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  TraceRecorder* recorder_;
  std::int64_t start_ns_;
};

}  // namespace operb::obs

#endif  // OPERB_OBS_TRACE_H_
