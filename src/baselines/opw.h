#ifndef OPERB_BASELINES_OPW_H_
#define OPERB_BASELINES_OPW_H_

#include "traj/piecewise.h"
#include "traj/trajectory.h"

namespace operb::baselines {

/// Distance criterion for the open-window algorithm.
enum class OpwDistance {
  kEuclidean,    ///< perpendicular distance to the window's line
  kSynchronous,  ///< time-interpolated (SED) distance [15]
};

/// Open-window online simplification (Meratnia & de By [15]; the paper's
/// Section 3.2 "OPW").
///
/// Grows a window [Ps..Pk]; while every buffered point stays within
/// `zeta` of the candidate line Ps->Pk the window extends, otherwise the
/// segment Ps->P_{k-1} is produced and a new window starts at P_{k-1}.
/// Each extension re-checks the whole window, so worst-case time is
/// O(n^2); the buffer makes space O(window). Online but *not* one-pass.
traj::PiecewiseRepresentation SimplifyOpw(
    const traj::Trajectory& trajectory, double zeta,
    OpwDistance distance = OpwDistance::kEuclidean);

}  // namespace operb::baselines

#endif  // OPERB_BASELINES_OPW_H_
