#include "baselines/simplifier.h"

#include "baselines/bqs.h"
#include "baselines/dp.h"
#include "baselines/opw.h"
#include "common/check.h"
#include "core/operb.h"
#include "core/operb_a.h"

namespace operb::baselines {

void Simplifier::SimplifyToSink(const traj::Trajectory& trajectory,
                                const traj::SegmentSink& sink) const {
  for (const traj::RepresentedSegment& s : Simplify(trajectory)) sink(s);
}

namespace {

using FreeFunction = traj::PiecewiseRepresentation (*)(const traj::Trajectory&,
                                                       double);

/// Adapter for the plain function-style baselines.
class FunctionSimplifier final : public Simplifier {
 public:
  FunctionSimplifier(std::string_view name, FreeFunction fn, double zeta)
      : name_(name), fn_(fn), zeta_(zeta) {}

  std::string_view name() const override { return name_; }

  traj::PiecewiseRepresentation Simplify(
      const traj::Trajectory& trajectory) const override {
    return fn_(trajectory, zeta_);
  }

 private:
  std::string_view name_;
  FreeFunction fn_;
  double zeta_;
};

traj::PiecewiseRepresentation SimplifyOpwEuclid(const traj::Trajectory& t,
                                                double zeta) {
  return SimplifyOpw(t, zeta, OpwDistance::kEuclidean);
}

traj::PiecewiseRepresentation SimplifyOpwSed(const traj::Trajectory& t,
                                             double zeta) {
  return SimplifyOpw(t, zeta, OpwDistance::kSynchronous);
}

class OperbSimplifier final : public Simplifier {
 public:
  OperbSimplifier(std::string_view name, const core::OperbOptions& options)
      : name_(name), options_(options) {}

  std::string_view name() const override { return name_; }

  traj::PiecewiseRepresentation Simplify(
      const traj::Trajectory& trajectory) const override {
    return core::SimplifyOperb(trajectory, options_);
  }

  void SimplifyToSink(const traj::Trajectory& trajectory,
                      const traj::SegmentSink& sink) const override {
    if (trajectory.size() < 2) return;
    core::OperbStream stream(options_);
    stream.SetSink(sink);
    stream.Push(std::span<const geo::Point>(trajectory.points()));
    stream.Finish();
  }

 private:
  std::string_view name_;
  core::OperbOptions options_;
};

class OperbASimplifier final : public Simplifier {
 public:
  OperbASimplifier(std::string_view name, const core::OperbAOptions& options)
      : name_(name), options_(options) {}

  std::string_view name() const override { return name_; }

  traj::PiecewiseRepresentation Simplify(
      const traj::Trajectory& trajectory) const override {
    return core::SimplifyOperbA(trajectory, options_);
  }

  void SimplifyToSink(const traj::Trajectory& trajectory,
                      const traj::SegmentSink& sink) const override {
    if (trajectory.size() < 2) return;
    core::OperbAStream stream(options_);
    stream.SetSink(sink);
    stream.Push(std::span<const geo::Point>(trajectory.points()));
    stream.Finish();
  }

 private:
  std::string_view name_;
  core::OperbAOptions options_;
};

}  // namespace

std::vector<Algorithm> AllAlgorithms() {
  return {Algorithm::kDP,       Algorithm::kDPSED,     Algorithm::kOPW,
          Algorithm::kOPWSED,   Algorithm::kBQS,       Algorithm::kFBQS,
          Algorithm::kRawOPERB, Algorithm::kOPERB,     Algorithm::kRawOPERBA,
          Algorithm::kOPERBA};
}

std::string_view AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kDP:
      return "DP";
    case Algorithm::kDPSED:
      return "DP-SED";
    case Algorithm::kOPW:
      return "OPW";
    case Algorithm::kOPWSED:
      return "OPW-SED";
    case Algorithm::kBQS:
      return "BQS";
    case Algorithm::kFBQS:
      return "FBQS";
    case Algorithm::kRawOPERB:
      return "Raw-OPERB";
    case Algorithm::kOPERB:
      return "OPERB";
    case Algorithm::kRawOPERBA:
      return "Raw-OPERB-A";
    case Algorithm::kOPERBA:
      return "OPERB-A";
  }
  return "unknown";
}

std::unique_ptr<Simplifier> MakeSimplifier(Algorithm algorithm, double zeta,
                                           OperbFidelity fidelity) {
  OPERB_CHECK_MSG(zeta > 0.0, "zeta must be positive");
  const bool guard = fidelity == OperbFidelity::kGuarded;
  switch (algorithm) {
    case Algorithm::kDP:
      return std::make_unique<FunctionSimplifier>("DP", &SimplifyDp, zeta);
    case Algorithm::kDPSED:
      return std::make_unique<FunctionSimplifier>("DP-SED", &SimplifyDpSed,
                                                  zeta);
    case Algorithm::kOPW:
      return std::make_unique<FunctionSimplifier>("OPW", &SimplifyOpwEuclid,
                                                  zeta);
    case Algorithm::kOPWSED:
      return std::make_unique<FunctionSimplifier>("OPW-SED", &SimplifyOpwSed,
                                                  zeta);
    case Algorithm::kBQS:
      return std::make_unique<FunctionSimplifier>("BQS", &SimplifyBqs, zeta);
    case Algorithm::kFBQS:
      return std::make_unique<FunctionSimplifier>("FBQS", &SimplifyFbqs,
                                                  zeta);
    case Algorithm::kRawOPERB:
      return std::make_unique<OperbSimplifier>("Raw-OPERB",
                                               core::OperbOptions::Raw(zeta));
    case Algorithm::kOPERB: {
      core::OperbOptions o = core::OperbOptions::Optimized(zeta);
      o.strict_bound_guard = guard;
      return std::make_unique<OperbSimplifier>("OPERB", o);
    }
    case Algorithm::kRawOPERBA:
      return std::make_unique<OperbASimplifier>(
          "Raw-OPERB-A", core::OperbAOptions::Raw(zeta));
    case Algorithm::kOPERBA: {
      core::OperbAOptions o = core::OperbAOptions::Optimized(zeta);
      o.base.strict_bound_guard = guard;
      return std::make_unique<OperbASimplifier>("OPERB-A", o);
    }
  }
  OPERB_CHECK_MSG(false, "unknown algorithm");
  return nullptr;
}

}  // namespace operb::baselines
