#include "baselines/simplifier.h"

namespace operb::baselines {

void Simplifier::SimplifyToSink(const traj::Trajectory& trajectory,
                                const traj::SegmentSink& sink) const {
  for (const traj::RepresentedSegment& s : Simplify(trajectory)) sink(s);
}

std::vector<Algorithm> AllAlgorithms() {
  return {Algorithm::kDP,       Algorithm::kDPSED,     Algorithm::kOPW,
          Algorithm::kOPWSED,   Algorithm::kBQS,       Algorithm::kFBQS,
          Algorithm::kRawOPERB, Algorithm::kOPERB,     Algorithm::kRawOPERBA,
          Algorithm::kOPERBA};
}

std::string_view AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kDP:
      return "DP";
    case Algorithm::kDPSED:
      return "DP-SED";
    case Algorithm::kOPW:
      return "OPW";
    case Algorithm::kOPWSED:
      return "OPW-SED";
    case Algorithm::kBQS:
      return "BQS";
    case Algorithm::kFBQS:
      return "FBQS";
    case Algorithm::kRawOPERB:
      return "Raw-OPERB";
    case Algorithm::kOPERB:
      return "OPERB";
    case Algorithm::kRawOPERBA:
      return "Raw-OPERB-A";
    case Algorithm::kOPERBA:
      return "OPERB-A";
  }
  return "unknown";
}

}  // namespace operb::baselines
