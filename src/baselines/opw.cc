#include "baselines/opw.h"

#include "common/check.h"
#include "geo/distance.h"

namespace operb::baselines {

namespace {

bool WindowFits(const traj::Trajectory& t, std::size_t first,
                std::size_t last, double zeta, OpwDistance distance) {
  const geo::Point& a = t[first];
  const geo::Point& b = t[last];
  for (std::size_t i = first + 1; i < last; ++i) {
    const double d =
        distance == OpwDistance::kEuclidean
            ? geo::PointToLineDistance(t[i].pos(), a.pos(), b.pos())
            : geo::SynchronousEuclideanDistance(t[i], a, b);
    if (d > zeta) return false;
  }
  return true;
}

}  // namespace

traj::PiecewiseRepresentation SimplifyOpw(const traj::Trajectory& trajectory,
                                          double zeta, OpwDistance distance) {
  OPERB_CHECK_MSG(zeta > 0.0, "zeta must be positive");
  traj::PiecewiseRepresentation out;
  const std::size_t n = trajectory.size();
  if (n < 2) return out;

  std::size_t first = 0;
  std::size_t last = 1;
  while (last + 1 < n) {
    // Try to extend the window to include point last+1.
    if (WindowFits(trajectory, first, last + 1, zeta, distance)) {
      ++last;
      continue;
    }
    // P_{last+1} breaks the window: emit Ps -> P_last and restart there.
    traj::RepresentedSegment s;
    s.start = trajectory[first].pos();
    s.end = trajectory[last].pos();
    s.first_index = first;
    s.last_index = last;
    out.Append(s);
    first = last;
    last = first + 1;
  }
  traj::RepresentedSegment s;
  s.start = trajectory[first].pos();
  s.end = trajectory[n - 1].pos();
  s.first_index = first;
  s.last_index = n - 1;
  out.Append(s);
  return out;
}

}  // namespace operb::baselines
