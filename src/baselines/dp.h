#ifndef OPERB_BASELINES_DP_H_
#define OPERB_BASELINES_DP_H_

#include <cstddef>

#include "traj/piecewise.h"
#include "traj/trajectory.h"

namespace operb::baselines {

/// Batch Douglas-Peucker simplification [6] (the paper's Figure 3).
///
/// Splits at the point of maximum distance to the line P_first -> P_last
/// until every point is within `zeta` of its segment's line. O(n^2) worst
/// case, O(n log n) typical; batch (needs the whole trajectory).
///
/// `SimplifyDp` is the production entry point and uses an explicit work
/// stack (no recursion, safe for multi-million point trajectories).
/// `SimplifyDpRecursive` is a literal transcription of the paper's
/// recursive pseudocode, kept as a cross-checking reference for tests.
traj::PiecewiseRepresentation SimplifyDp(const traj::Trajectory& trajectory,
                                         double zeta);

traj::PiecewiseRepresentation SimplifyDpRecursive(
    const traj::Trajectory& trajectory, double zeta);

/// Top-down DP using the time-synchronized (SED) distance [15]: splits at
/// the point whose position deviates most from where linear interpolation
/// in *time* along the candidate segment would put it. Preserves speed
/// changes that plain DP compresses away.
traj::PiecewiseRepresentation SimplifyDpSed(const traj::Trajectory& trajectory,
                                            double zeta);

}  // namespace operb::baselines

#endif  // OPERB_BASELINES_DP_H_
