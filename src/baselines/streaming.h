#ifndef OPERB_BASELINES_STREAMING_H_
#define OPERB_BASELINES_STREAMING_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "baselines/simplifier.h"
#include "common/status.h"
#include "geo/point.h"
#include "traj/piecewise.h"

namespace operb::baselines {

/// Incremental counterpart of Simplifier: points go in one at a time,
/// segments come out through a sink. This is the per-object state the
/// sharded StreamEngine keeps resident for every live trajectory.
///
/// Contract (all implementations):
///  - SetSink() installs the emission callback; call it once, before the
///    first Push(). The sink survives Reset(), so a pooled state is wired
///    up exactly once.
///  - Push()/Finish() produce the same segment sequence as the matching
///    Simplifier::Simplify() on the same points — bit-identical, which is
///    what makes the engine testable against tests/golden/.
///  - Reset() returns the state to "fresh trajectory" condition while
///    keeping its buffers' capacity, so pooled reuse performs no heap
///    allocation (asserted by allocation_test for the one-pass family).
///
/// The OPERB-family implementations are truly one-pass (O(1) state,
/// allocation-free per point on the sink path). The batch baselines (DP,
/// DP-SED, OPW, OPW-SED, BQS, FBQS) buffer the trajectory and run their
/// batch algorithm at Finish() — same output, but O(n) state; they exist
/// so the engine can serve any of the 10 algorithms uniformly.
class StreamingSimplifier {
 public:
  virtual ~StreamingSimplifier() = default;

  /// Paper-style algorithm name ("OPERB", "DP", ...).
  virtual std::string_view name() const = 0;

  /// True for the algorithms with O(1) per-object state (OPERB family);
  /// false for the buffering batch adapters.
  virtual bool one_pass() const = 0;

  /// Installs the emission callback (once, before the first Push).
  virtual void SetSink(traj::SegmentSink sink) = 0;

  /// Feeds the next point. Timestamps must be strictly increasing per
  /// trajectory (not re-validated here).
  virtual void Push(const geo::Point& p) = 0;

  /// Feeds a batch (same semantics as point-wise Push).
  virtual void Push(std::span<const geo::Point> points) = 0;

  /// End-of-trajectory: flushes pending state into the sink. Push() must
  /// not be called again until Reset().
  virtual void Finish() = 0;

  /// Ready the state for the next trajectory, keeping capacity.
  virtual void Reset() = 0;

  /// Appends a versioned, checksummed, byte-stable encoding of the
  /// complete dynamic state: a 4-byte family magic, a version byte, the
  /// fixed-size field payload, and a trailing FNV-1a64 over all of it —
  /// the same discipline as the store's block footer. Options and the
  /// sink are configuration, not state: Deserialize() must run on an
  /// instance created from the identical SimplifierSpec, which then
  /// resumes mid-trajectory bit-identically (the engine checkpoint
  /// contract; see DESIGN.md §9).
  virtual void Serialize(std::vector<std::uint8_t>* out) const = 0;

  /// Inverse of Serialize(), advancing `*pos` past the consumed blob.
  /// Corruption for a wrong magic, failed checksum or truncation;
  /// InvalidArgument for a version or configuration (zeta) mismatch.
  virtual Status Deserialize(std::span<const std::uint8_t> in,
                             std::size_t* pos) = 0;
};

/// Creates a resettable streaming state for any algorithm, configured
/// identically to MakeSimplifier(algorithm, zeta, fidelity) — the two
/// factories produce bit-identical segment sequences.
///
/// Compatibility wrapper: like MakeSimplifier, defined in
/// src/api/compat.cc over the AlgorithmRegistry (which hands out both
/// factories of an algorithm from one registration, so batch and
/// streaming configuration cannot drift apart).
std::unique_ptr<StreamingSimplifier> MakeStreamingSimplifier(
    Algorithm algorithm, double zeta,
    OperbFidelity fidelity = OperbFidelity::kGuarded);

}  // namespace operb::baselines

#endif  // OPERB_BASELINES_STREAMING_H_
