#include "baselines/streaming.h"

#include <utility>

#include "baselines/bqs.h"
#include "baselines/dp.h"
#include "baselines/opw.h"
#include "common/check.h"
#include "core/operb.h"
#include "core/operb_a.h"
#include "traj/trajectory.h"

namespace operb::baselines {

namespace {

/// One-pass wrapper over core::OperbStream.
class OperbStreaming final : public StreamingSimplifier {
 public:
  OperbStreaming(std::string_view name, const core::OperbOptions& options)
      : name_(name), stream_(options) {}

  std::string_view name() const override { return name_; }
  bool one_pass() const override { return true; }
  void SetSink(traj::SegmentSink sink) override {
    stream_.SetSink(std::move(sink));
  }
  void Push(const geo::Point& p) override { stream_.Push(p); }
  void Push(std::span<const geo::Point> points) override {
    stream_.Push(points);
  }
  void Finish() override { stream_.Finish(); }
  void Reset() override { stream_.Reset(); }

 private:
  std::string_view name_;
  core::OperbStream stream_;
};

/// One-pass wrapper over core::OperbAStream.
class OperbAStreaming final : public StreamingSimplifier {
 public:
  OperbAStreaming(std::string_view name, const core::OperbAOptions& options)
      : name_(name), stream_(options) {}

  std::string_view name() const override { return name_; }
  bool one_pass() const override { return true; }
  void SetSink(traj::SegmentSink sink) override {
    stream_.SetSink(std::move(sink));
  }
  void Push(const geo::Point& p) override { stream_.Push(p); }
  void Push(std::span<const geo::Point> points) override {
    stream_.Push(points);
  }
  void Finish() override { stream_.Finish(); }
  void Reset() override { stream_.Reset(); }

 private:
  std::string_view name_;
  core::OperbAStream stream_;
};

using FreeFunction = traj::PiecewiseRepresentation (*)(const traj::Trajectory&,
                                                       double);

traj::PiecewiseRepresentation RunOpwEuclid(const traj::Trajectory& t,
                                           double zeta) {
  return SimplifyOpw(t, zeta, OpwDistance::kEuclidean);
}

traj::PiecewiseRepresentation RunOpwSed(const traj::Trajectory& t,
                                        double zeta) {
  return SimplifyOpw(t, zeta, OpwDistance::kSynchronous);
}

/// Buffering adapter for the batch baselines: Push() accumulates the
/// trajectory (amortized; the buffer's capacity survives Reset, so a
/// pooled state stops allocating per point once warm), Finish() runs the
/// batch algorithm and forwards every segment to the sink in order.
class BufferedStreaming final : public StreamingSimplifier {
 public:
  BufferedStreaming(std::string_view name, FreeFunction fn, double zeta)
      : name_(name), fn_(fn), zeta_(zeta) {}

  std::string_view name() const override { return name_; }
  bool one_pass() const override { return false; }
  void SetSink(traj::SegmentSink sink) override { sink_ = std::move(sink); }
  void Push(const geo::Point& p) override {
    buffer_.AppendUnchecked(p);  // order is the caller's contract
  }
  void Push(std::span<const geo::Point> points) override {
    for (const geo::Point& p : points) buffer_.AppendUnchecked(p);
  }
  void Finish() override {
    if (buffer_.size() < 2) return;  // matches Simplifier::Simplify
    for (const traj::RepresentedSegment& s : fn_(buffer_, zeta_)) {
      if (sink_) sink_(s);
    }
  }
  void Reset() override { buffer_.clear(); }

 private:
  std::string_view name_;
  FreeFunction fn_;
  double zeta_;
  traj::SegmentSink sink_;
  traj::Trajectory buffer_;
};

}  // namespace

std::unique_ptr<StreamingSimplifier> MakeStreamingSimplifier(
    Algorithm algorithm, double zeta, OperbFidelity fidelity) {
  OPERB_CHECK_MSG(zeta > 0.0, "zeta must be positive");
  const bool guard = fidelity == OperbFidelity::kGuarded;
  switch (algorithm) {
    case Algorithm::kDP:
      return std::make_unique<BufferedStreaming>("DP", &SimplifyDp, zeta);
    case Algorithm::kDPSED:
      return std::make_unique<BufferedStreaming>("DP-SED", &SimplifyDpSed,
                                                 zeta);
    case Algorithm::kOPW:
      return std::make_unique<BufferedStreaming>("OPW", &RunOpwEuclid, zeta);
    case Algorithm::kOPWSED:
      return std::make_unique<BufferedStreaming>("OPW-SED", &RunOpwSed, zeta);
    case Algorithm::kBQS:
      return std::make_unique<BufferedStreaming>("BQS", &SimplifyBqs, zeta);
    case Algorithm::kFBQS:
      return std::make_unique<BufferedStreaming>("FBQS", &SimplifyFbqs, zeta);
    case Algorithm::kRawOPERB:
      return std::make_unique<OperbStreaming>("Raw-OPERB",
                                              core::OperbOptions::Raw(zeta));
    case Algorithm::kOPERB: {
      core::OperbOptions o = core::OperbOptions::Optimized(zeta);
      o.strict_bound_guard = guard;
      return std::make_unique<OperbStreaming>("OPERB", o);
    }
    case Algorithm::kRawOPERBA:
      return std::make_unique<OperbAStreaming>(
          "Raw-OPERB-A", core::OperbAOptions::Raw(zeta));
    case Algorithm::kOPERBA: {
      core::OperbAOptions o = core::OperbAOptions::Optimized(zeta);
      o.base.strict_bound_guard = guard;
      return std::make_unique<OperbAStreaming>("OPERB-A", o);
    }
  }
  OPERB_CHECK_MSG(false, "unknown algorithm");
  return nullptr;
}

}  // namespace operb::baselines
