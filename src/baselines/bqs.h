#ifndef OPERB_BASELINES_BQS_H_
#define OPERB_BASELINES_BQS_H_

#include <array>
#include <optional>
#include <vector>

#include "geo/bbox.h"
#include "geo/point.h"
#include "traj/piecewise.h"
#include "traj/trajectory.h"

namespace operb::baselines {

/// Per-quadrant convex bound used by BQS/FBQS [12].
///
/// For the points that fell into one quadrant around the window start Ps,
/// the summary keeps the axis-aligned bounding box, the two bounding
/// directions (the points Ph/Pl with the largest/smallest angle from Ps)
/// and the actual trajectory points achieving each extreme (at most 8
/// "significant points"). The convex region box ∩ wedge(Pl..Ph) contains
/// every summarized point, so distances from its corner vertices to a
/// candidate line upper-bound the distance of every point, while the
/// significant points' own distances lower-bound the maximum.
class QuadrantSummary {
 public:
  void Reset(geo::Vec2 origin);
  void Add(geo::Vec2 p);
  bool empty() const { return count_ == 0; }

  /// Max distance from any point in the bounding region to the infinite
  /// line through `a` and `b` (an upper bound for all summarized points).
  double UpperBound(geo::Vec2 a, geo::Vec2 b) const;

  /// Max distance of the stored significant points to the line (a lower
  /// bound for the true maximum over summarized points).
  double LowerBound(geo::Vec2 a, geo::Vec2 b) const;

 private:
  geo::Vec2 origin_;
  geo::BoundingBox box_;
  std::size_t count_ = 0;
  geo::Vec2 p_high_;  ///< Ph: max angle from the origin
  geo::Vec2 p_low_;   ///< Pl: min angle from the origin
  std::array<geo::Vec2, 4> box_points_;  ///< achieving min/max x, min/max y
};

/// The open-window state shared by BQS and FBQS: the window start and the
/// four quadrant summaries of all interior points added so far.
class BqsWindow {
 public:
  explicit BqsWindow(geo::Vec2 start);

  /// Adds an interior point to its quadrant's summary.
  void Add(geo::Vec2 p);

  struct Bounds {
    double upper = 0.0;
    double lower = 0.0;
  };
  /// Distance bounds of all interior points against the candidate line
  /// start -> `end`.
  Bounds BoundsForLine(geo::Vec2 end) const;

  geo::Vec2 start() const { return start_; }

 private:
  geo::Vec2 start_;
  std::array<QuadrantSummary, 4> quadrants_;
};

/// Full BQS [12]: on ambiguous bounds (lower <= zeta < upper) falls back
/// to scanning the buffered window, so it stays exact but needs the
/// buffer (not one-pass; O(n^2) worst case).
traj::PiecewiseRepresentation SimplifyBqs(const traj::Trajectory& trajectory,
                                          double zeta);

/// FBQS [12]: buffer-free variant — an ambiguous bound closes the window
/// (the previously verified line is emitted). Linear time, O(1) state;
/// the fastest pre-existing LS algorithm and the paper's main speed
/// comparator.
traj::PiecewiseRepresentation SimplifyFbqs(const traj::Trajectory& trajectory,
                                           double zeta);

}  // namespace operb::baselines

#endif  // OPERB_BASELINES_BQS_H_
