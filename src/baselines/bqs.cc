#include "baselines/bqs.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geo/distance.h"
#include "geo/polygon_clip.h"

namespace operb::baselines {

namespace {

int QuadrantOf(geo::Vec2 rel) {
  if (rel.x >= 0.0) return rel.y >= 0.0 ? 0 : 3;
  return rel.y >= 0.0 ? 1 : 2;
}

/// Fixed-capacity convex polygon for the per-point bound computation.
/// Clipping a quad by two half-planes yields at most 8 vertices (plus
/// slack for boundary duplicates); keeping it on the stack keeps the
/// FBQS hot path allocation-free.
struct SmallPolygon {
  std::array<geo::Vec2, 12> v;
  int n = 0;

  void Push(geo::Vec2 p) {
    if (n < static_cast<int>(v.size())) v[n++] = p;
  }
};

void ClipInPlace(SmallPolygon* poly, const geo::HalfPlane& hp) {
  SmallPolygon out;
  for (int i = 0; i < poly->n; ++i) {
    const geo::Vec2 cur = poly->v[i];
    const geo::Vec2 nxt = poly->v[(i + 1) % poly->n];
    const double ec = hp.Evaluate(cur);
    const double en = hp.Evaluate(nxt);
    const bool cur_in = ec <= 1e-9;
    const bool nxt_in = en <= 1e-9;
    if (cur_in) out.Push(cur);
    if (cur_in != nxt_in && ec != en) {
      out.Push(cur + (nxt - cur) * (ec / (ec - en)));
    }
  }
  *poly = out;
}

}  // namespace

void QuadrantSummary::Reset(geo::Vec2 origin) {
  origin_ = origin;
  box_ = geo::BoundingBox();
  count_ = 0;
}

void QuadrantSummary::Add(geo::Vec2 p) {
  const geo::Vec2 rel = p - origin_;
  if (count_ == 0) {
    p_high_ = p_low_ = p;
    box_points_.fill(p);
  } else {
    // Points in one quadrant span less than pi of bearing, so "larger
    // angle from the origin" is exactly "counter-clockwise of", a cross
    // product — no atan2 needed on this per-point path.
    if ((p_high_ - origin_).Cross(rel) > 0.0) p_high_ = p;
    if ((p_low_ - origin_).Cross(rel) < 0.0) p_low_ = p;
    if (p.x < box_points_[0].x) box_points_[0] = p;
    if (p.x > box_points_[1].x) box_points_[1] = p;
    if (p.y < box_points_[2].y) box_points_[2] = p;
    if (p.y > box_points_[3].y) box_points_[3] = p;
  }
  box_.Extend(p);
  ++count_;
}

double QuadrantSummary::UpperBound(geo::Vec2 a, geo::Vec2 b) const {
  if (count_ == 0) return 0.0;
  // Convex region = bounding box clipped by the angular wedge
  // [Pl angle, Ph angle] around the origin: keep points clockwise of
  // origin->Ph (right of it) and counter-clockwise of origin->Pl.
  SmallPolygon region;
  for (const geo::Vec2& c : box_.Corners()) region.Push(c);
  if (count_ >= 2) {
    // With a single point the wedge is degenerate; the box is the point.
    ClipInPlace(&region, geo::HalfPlane::RightOf(origin_, p_high_));
    ClipInPlace(&region, geo::HalfPlane::LeftOf(origin_, p_low_));
  }
  // Distance from each region vertex to the line a->b, hoisting the
  // line's inverse length out of the loop.
  const geo::Vec2 ab = b - a;
  const double len = ab.Norm();
  if (len == 0.0) {
    double worst = 0.0;
    for (int i = 0; i < region.n; ++i) {
      worst = std::max(worst, geo::Distance(region.v[i], a));
    }
    return worst;
  }
  double worst_cross = 0.0;
  for (int i = 0; i < region.n; ++i) {
    worst_cross = std::max(worst_cross, std::fabs(ab.Cross(region.v[i] - a)));
  }
  return worst_cross / len;
}

double QuadrantSummary::LowerBound(geo::Vec2 a, geo::Vec2 b) const {
  if (count_ == 0) return 0.0;
  double best = std::max(geo::PointToLineDistance(p_high_, a, b),
                         geo::PointToLineDistance(p_low_, a, b));
  for (const geo::Vec2& p : box_points_) {
    best = std::max(best, geo::PointToLineDistance(p, a, b));
  }
  return best;
}

BqsWindow::BqsWindow(geo::Vec2 start) : start_(start) {
  for (QuadrantSummary& q : quadrants_) q.Reset(start);
}

void BqsWindow::Add(geo::Vec2 p) {
  quadrants_[QuadrantOf(p - start_)].Add(p);
}

BqsWindow::Bounds BqsWindow::BoundsForLine(geo::Vec2 end) const {
  Bounds b;
  for (const QuadrantSummary& q : quadrants_) {
    if (q.empty()) continue;
    b.upper = std::max(b.upper, q.UpperBound(start_, end));
    b.lower = std::max(b.lower, q.LowerBound(start_, end));
  }
  return b;
}

namespace {

/// Shared BQS/FBQS driver. `buffered` enables the exact fallback scan on
/// ambiguous bounds (BQS); without it ambiguity closes the window (FBQS).
traj::PiecewiseRepresentation RunBqs(const traj::Trajectory& trajectory,
                                     double zeta, bool buffered) {
  OPERB_CHECK_MSG(zeta > 0.0, "zeta must be positive");
  traj::PiecewiseRepresentation out;
  const std::size_t n = trajectory.size();
  if (n < 2) return out;

  std::size_t first = 0;
  BqsWindow window(trajectory[first].pos());
  std::size_t last = 1;  // window is [first .. last], interior summarized

  auto emit = [&](std::size_t lo, std::size_t hi) {
    traj::RepresentedSegment s;
    s.start = trajectory[lo].pos();
    s.end = trajectory[hi].pos();
    s.first_index = lo;
    s.last_index = hi;
    out.Append(s);
  };

  while (last + 1 < n) {
    const std::size_t candidate = last + 1;
    // The previous window endpoint becomes an interior point of the
    // extended window; summarize it before bounding.
    window.Add(trajectory[last].pos());
    const BqsWindow::Bounds bounds =
        window.BoundsForLine(trajectory[candidate].pos());

    bool fits;
    if (bounds.upper <= zeta) {
      fits = true;
    } else if (bounds.lower > zeta) {
      fits = false;
    } else if (buffered) {
      // BQS ambiguity fallback: exact scan of the buffered interior.
      fits = true;
      const geo::Vec2 a = trajectory[first].pos();
      const geo::Vec2 b = trajectory[candidate].pos();
      for (std::size_t i = first + 1; i < candidate; ++i) {
        if (geo::PointToLineDistance(trajectory[i].pos(), a, b) > zeta) {
          fits = false;
          break;
        }
      }
    } else {
      // FBQS: no buffer to consult — close the window conservatively.
      fits = false;
    }

    if (fits) {
      last = candidate;
      continue;
    }
    // The line first -> last was verified when `last` was accepted.
    emit(first, last);
    first = last;
    window = BqsWindow(trajectory[first].pos());
    last = first + 1;
  }
  emit(first, n - 1);
  return out;
}

}  // namespace

traj::PiecewiseRepresentation SimplifyBqs(const traj::Trajectory& trajectory,
                                          double zeta) {
  return RunBqs(trajectory, zeta, /*buffered=*/true);
}

traj::PiecewiseRepresentation SimplifyFbqs(const traj::Trajectory& trajectory,
                                           double zeta) {
  return RunBqs(trajectory, zeta, /*buffered=*/false);
}

}  // namespace operb::baselines
