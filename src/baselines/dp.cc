#include "baselines/dp.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "geo/distance.h"

namespace operb::baselines {

namespace {

/// Index of the point in (first, last) farthest from the line
/// P_first -> P_last, together with that distance. Returns {first, 0}
/// when the range has no interior points.
std::pair<std::size_t, double> FarthestPoint(const traj::Trajectory& t,
                                             std::size_t first,
                                             std::size_t last) {
  const geo::Vec2 a = t[first].pos();
  const geo::Vec2 b = t[last].pos();
  std::size_t arg = first;
  double best = 0.0;
  for (std::size_t i = first + 1; i < last; ++i) {
    const double d = geo::PointToLineDistance(t[i].pos(), a, b);
    if (d > best) {
      best = d;
      arg = i;
    }
  }
  return {arg, best};
}

traj::RepresentedSegment MakeSegment(const traj::Trajectory& t,
                                     std::size_t first, std::size_t last) {
  traj::RepresentedSegment s;
  s.start = t[first].pos();
  s.end = t[last].pos();
  s.first_index = first;
  s.last_index = last;
  return s;
}

void DpRecurse(const traj::Trajectory& t, std::size_t first, std::size_t last,
               double zeta, traj::PiecewiseRepresentation* out) {
  const auto [k, dmax] = FarthestPoint(t, first, last);
  if (dmax <= zeta) {
    out->Append(MakeSegment(t, first, last));
    return;
  }
  DpRecurse(t, first, k, zeta, out);
  DpRecurse(t, k, last, zeta, out);
}

}  // namespace

traj::PiecewiseRepresentation SimplifyDp(const traj::Trajectory& trajectory,
                                         double zeta) {
  OPERB_CHECK_MSG(zeta > 0.0, "zeta must be positive");
  traj::PiecewiseRepresentation out;
  if (trajectory.size() < 2) return out;

  // Depth-first over an explicit stack, expanding the left child first so
  // segments are appended in trajectory order.
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  stack.emplace_back(0, trajectory.size() - 1);
  while (!stack.empty()) {
    const auto [first, last] = stack.back();
    stack.pop_back();
    const auto [k, dmax] = FarthestPoint(trajectory, first, last);
    if (dmax <= zeta) {
      out.Append(MakeSegment(trajectory, first, last));
      continue;
    }
    // Right pushed first so the left range is processed next.
    stack.emplace_back(k, last);
    stack.emplace_back(first, k);
  }
  return out;
}

traj::PiecewiseRepresentation SimplifyDpRecursive(
    const traj::Trajectory& trajectory, double zeta) {
  OPERB_CHECK_MSG(zeta > 0.0, "zeta must be positive");
  traj::PiecewiseRepresentation out;
  if (trajectory.size() < 2) return out;
  DpRecurse(trajectory, 0, trajectory.size() - 1, zeta, &out);
  return out;
}

traj::PiecewiseRepresentation SimplifyDpSed(const traj::Trajectory& trajectory,
                                            double zeta) {
  OPERB_CHECK_MSG(zeta > 0.0, "zeta must be positive");
  traj::PiecewiseRepresentation out;
  if (trajectory.size() < 2) return out;
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  stack.emplace_back(0, trajectory.size() - 1);
  while (!stack.empty()) {
    const auto [first, last] = stack.back();
    stack.pop_back();
    const geo::Point& a = trajectory[first];
    const geo::Point& b = trajectory[last];
    std::size_t arg = first;
    double best = 0.0;
    for (std::size_t i = first + 1; i < last; ++i) {
      const double d = geo::SynchronousEuclideanDistance(trajectory[i], a, b);
      if (d > best) {
        best = d;
        arg = i;
      }
    }
    if (best <= zeta) {
      out.Append(MakeSegment(trajectory, first, last));
      continue;
    }
    stack.emplace_back(arg, last);
    stack.emplace_back(first, arg);
  }
  return out;
}

}  // namespace operb::baselines
