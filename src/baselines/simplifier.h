#ifndef OPERB_BASELINES_SIMPLIFIER_H_
#define OPERB_BASELINES_SIMPLIFIER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "traj/piecewise.h"
#include "traj/trajectory.h"

namespace operb::baselines {

/// Uniform interface over all simplification algorithms in this library
/// (the paper's contribution and every baseline), used by the evaluation
/// harness and examples.
///
/// Instances carry their parameters (zeta and algorithm-specific options)
/// and are stateless across Simplify() calls, so one instance can process
/// a whole dataset.
class Simplifier {
 public:
  virtual ~Simplifier() = default;

  /// Short identifier as used in the paper's figures ("DP", "FBQS",
  /// "OPERB", ...).
  virtual std::string_view name() const = 0;

  /// Produces a piecewise-line representation error-bounded by the
  /// configured zeta. Trajectories with fewer than two points yield an
  /// empty representation.
  virtual traj::PiecewiseRepresentation Simplify(
      const traj::Trajectory& trajectory) const = 0;

  /// Streams the representation into `sink` segment by segment, in output
  /// order; segments are identical to Simplify()'s. For the one-pass
  /// algorithms (OPERB family) this is the allocation-free hot path —
  /// segments are handed over the moment they are determined; the batch
  /// baselines fall back to Simplify() and forward.
  virtual void SimplifyToSink(const traj::Trajectory& trajectory,
                              const traj::SegmentSink& sink) const;
};

/// The algorithms the paper evaluates (Section 6.1) plus the extra
/// baselines this library ships.
enum class Algorithm {
  kDP,           ///< batch Douglas-Peucker [6]
  kDPSED,        ///< top-down DP with synchronous Euclidean distance [15]
  kOPW,          ///< open-window online algorithm [15], Euclidean distance
  kOPWSED,       ///< OPW with synchronous Euclidean distance [15]
  kBQS,          ///< bounded quadrant system [12]
  kFBQS,         ///< fast (buffer-free) BQS [12]
  kRawOPERB,     ///< OPERB without optimizations (Figure 7 only)
  kOPERB,        ///< OPERB with the five optimizations
  kRawOPERBA,    ///< Raw-OPERB + interpolation
  kOPERBA,       ///< OPERB + interpolation (OPERB-A)
};

/// All algorithms, in the order the paper's figures list them.
std::vector<Algorithm> AllAlgorithms();

/// Paper-style display name ("DP", "OPERB-A", ...).
std::string_view AlgorithmName(Algorithm algorithm);

/// How the OPERB-family simplifiers treat the heuristic optimizations'
/// error bound (see core::OperbOptions::strict_bound_guard):
///  - kGuarded (library default): the O(1) drift guard enforces a hard
///    zeta guarantee, at a small compression cost;
///  - kPaperFaithful: the paper's heuristics verbatim — what the paper's
///    figures measured. Bounded in practice on GPS-like data, but without
///    a worst-case guarantee.
/// Non-OPERB algorithms are unaffected.
enum class OperbFidelity { kGuarded, kPaperFaithful };

/// Creates a configured simplifier. `zeta` is the error bound in meters
/// and must be positive (checked — this is a programmer API with a
/// documented precondition; untrusted configuration must go through
/// api::SimplifierSpec / api::AlgorithmRegistry, whose Status-returning
/// surface never aborts).
///
/// Compatibility wrapper: defined in src/api/compat.cc as a thin shim
/// over the string-keyed AlgorithmRegistry, which is the single
/// construction path for all 10 algorithms. Linking this symbol
/// therefore requires the operb::api module (all leaf targets in this
/// repo link every module).
std::unique_ptr<Simplifier> MakeSimplifier(
    Algorithm algorithm, double zeta,
    OperbFidelity fidelity = OperbFidelity::kGuarded);

}  // namespace operb::baselines

#endif  // OPERB_BASELINES_SIMPLIFIER_H_
