#ifndef OPERB_ENGINE_STREAM_ENGINE_H_
#define OPERB_ENGINE_STREAM_ENGINE_H_

/// \file
/// Sharded multi-object streaming simplification engine and its
/// options, stats and sink types.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/spec.h"
#include "common/result.h"
#include "common/status.h"
#include "geo/point.h"
#include "store/env.h"
#include "traj/multi_object.h"
#include "traj/piecewise.h"

namespace operb::engine {

/// Output callback of the engine: one determined segment of one object.
/// Invoked from worker threads — concurrently for objects on different
/// shards, serially (and in emission order) for any single object. The
/// callback must therefore be thread-safe across objects; per-object it
/// sees exactly the segment sequence the single-stream sink path emits.
using TaggedSegmentSink =
    std::function<void(traj::ObjectId, const traj::RepresentedSegment&)>;

/// Configuration of a StreamEngine.
struct StreamEngineOptions {
  /// Per-object simplifier, resolved through api::AlgorithmRegistry.
  /// Identical in configuration and output to the single-stream
  /// simplifier the same spec constructs (determinism contract below);
  /// the spec's zeta is the engine's error bound. Defaults to OPERB at
  /// zeta 40 with the guarded fidelity.
  api::SimplifierSpec spec;

  /// Number of shards (state-table partitions). Objects map to shards by
  /// a mixed hash of their id; per-object output is independent of this
  /// value (determinism contract), it only controls parallelism and
  /// table sizes.
  std::size_t num_shards = 8;

  /// Worker threads; shard s is owned by thread s % num_threads, so
  /// values above num_shards are clamped. Each shard is only ever
  /// touched by its owning thread — per-object state needs no locks.
  std::size_t num_threads = 1;

  /// Capacity of each shard's input ring (rounded up to a power of two).
  /// A full ring blocks the producer (backpressure), it never drops.
  std::size_t ring_capacity = 8192;

  /// Producer-side staging batch per shard: updates are handed to a ring
  /// in blocks of up to this many, amortizing the atomic hand-off.
  /// Points can therefore sit in staging until the batch fills — call
  /// Flush()/Close() (or Tick, which flushes first) to force delivery.
  std::size_t producer_batch = 64;

  /// Watermark-based idle flush: when a Tick(watermark) arrives, every
  /// object whose last point is older than `watermark -
  /// idle_timeout_seconds` is finished and evicted back to the state
  /// pool. 0 disables idle eviction (Tick becomes a no-op).
  double idle_timeout_seconds = 0.0;

  /// Validates parameter ranges and resolves the spec against the
  /// algorithm registry; this is the boundary check that makes engine
  /// construction safe on untrusted configuration (pair with
  /// StreamEngine::Create).
  Status Validate() const;

  std::string ToString() const;
};

/// Aggregate counters of one engine run (valid after Close()).
struct StreamEngineStats {
  std::uint64_t points = 0;            ///< point updates accepted
  std::uint64_t segments = 0;          ///< tagged segments emitted
  std::uint64_t objects_opened = 0;    ///< states created or reused
  std::uint64_t objects_finished = 0;  ///< explicit + idle + close flushes
  std::uint64_t idle_evictions = 0;    ///< flushes caused by Tick watermarks
  std::uint64_t ring_full_stalls = 0;  ///< producer backpressure events
  /// True global maximum of concurrently live states (tracked across
  /// shards at object open/finish — not per point).
  std::uint64_t peak_live_objects = 0;
  /// Total pooled states = sum of per-shard peak live populations (an
  /// upper bound on peak_live_objects when shards peak at different
  /// times).
  std::uint64_t states_allocated = 0;
};

/// Sharded multi-object streaming simplification engine.
///
/// Routes an interleaved stream of (object_id, point) updates from many
/// concurrently moving objects to per-object simplifier states — any of
/// the library's 10 algorithms — partitioned by hash(object_id) %
/// num_shards across a fixed worker-thread pool:
///
///   Push/Tick (producer thread)
///     └─ per-shard staging batch ──SPSC ring──► worker thread
///          └─ shard: open-addressing table object_id → pooled
///             StreamingSimplifier state ──► TaggedSegmentSink
///
/// Determinism contract: for every object, the emitted segment sequence
/// is bit-identical to running the single-stream sink path over that
/// object's points alone — regardless of shard count, thread count,
/// interleaving with other objects, or scheduling. This holds because an
/// object's updates stay in producer order through exactly one staging
/// buffer, one FIFO ring and one owning worker, and the per-object state
/// is exactly the single-stream simplifier (see DESIGN.md "Sharded
/// multi-object streaming engine").
///
/// Threading contract: Push/FinishObject/Tick/Flush/Close must be called
/// from one producer thread (or externally serialized). The sink runs on
/// worker threads, concurrently across shards.
///
/// Steady-state cost: after warm-up (state pool and table grown to the
/// live-object working set), a point update performs no heap allocation
/// for the one-pass algorithms — the ring slots, the table and the
/// pooled states are all reused.
class StreamEngine {
 public:
  /// Status-returning construction for untrusted configuration: validates
  /// `options` (including the spec, against the registry) and returns
  /// InvalidArgument/NotFound instead of aborting. The boundary entry
  /// point used by api::Pipeline and operb_cli.
  static Result<std::unique_ptr<StreamEngine>> Create(
      const StreamEngineOptions& options, TaggedSegmentSink sink);

  /// Reconstructs an engine mid-stream from a file Checkpoint() wrote.
  /// `options` must describe the same engine: the simplifier spec and
  /// shard count are embedded in the checkpoint and checked
  /// (InvalidArgument on mismatch; thread count, ring sizing and idle
  /// timeout may differ — they never affect per-object output, see the
  /// determinism contract). Corruption on a damaged, truncated or
  /// foreign file; InvalidArgument on an unsupported checkpoint
  /// version. Worker threads start only after every per-object state is
  /// rebuilt, so the first post-restore Push() continues each
  /// trajectory exactly where the checkpoint cut it: replaying the
  /// stream's remainder emits bit-identical segments to the
  /// uninterrupted run.
  static Result<std::unique_ptr<StreamEngine>> CreateFromCheckpoint(
      const std::string& path, const StreamEngineOptions& options,
      TaggedSegmentSink sink);

  /// Precondition: options.Validate().ok() (checked — use Create() when
  /// the options come from user input). The engine starts its worker
  /// threads immediately; `sink` may be empty (segments are then only
  /// counted).
  StreamEngine(const StreamEngineOptions& options, TaggedSegmentSink sink);

  /// Implicitly Close()s if the caller has not.
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Feeds one update. Timestamps must be strictly increasing per object.
  void Push(traj::ObjectId id, const geo::Point& p);

  /// Feeds a batch of interleaved updates.
  void Push(std::span<const traj::ObjectUpdate> updates);

  /// Declares end-of-stream for one object: its state is flushed (the
  /// sink receives its remaining segments) and returned to the pool. An
  /// unknown id is a no-op; pushing the id again later starts a fresh
  /// trajectory.
  void FinishObject(traj::ObjectId id);

  /// Advances the event-time watermark: every shard flushes objects idle
  /// for longer than options.idle_timeout_seconds (no-op when that is 0).
  /// Ordered after everything pushed before it.
  void Tick(double watermark);

  /// Hands all staged updates to the shard rings (delivery barrier is
  /// still asynchronous; Close() is the only completion barrier).
  void Flush();

  /// Writes a consistent snapshot of the complete streaming state —
  /// every live object's simplifier state, engine and shard counters —
  /// to `path`, durably (temp file + rename through the store Env
  /// seam, DESIGN.md §9). The call is a drain barrier: everything
  /// pushed before it is fully processed first, so the snapshot is
  /// exactly "the engine after the stream's prefix" and the engine
  /// keeps running afterwards. Producer-thread only, like Push().
  /// InvalidArgument on a closed engine; IOError when the write or the
  /// rename fails (no partial checkpoint is left at `path` — at most a
  /// stale `path + ".tmp"`). `env` is the write-side filesystem seam;
  /// nullptr uses the real filesystem.
  Status Checkpoint(const std::string& path, store::Env* env = nullptr);

  /// Finishes every live object, drains all rings, stops the workers and
  /// joins them. Idempotent. After Close() the engine only serves
  /// stats().
  void Close();

  bool closed() const { return closed_; }

  /// Aggregate counters; requires closed().
  const StreamEngineStats& stats() const;

  const StreamEngineOptions& options() const { return options_; }

 private:
  enum class Kind : std::uint8_t { kPoint, kFinish, kTick, kCloseAll };

  /// One ring entry. For kTick, point.t carries the watermark.
  struct Update {
    traj::ObjectId id = 0;
    geo::Point point;
    Kind kind = Kind::kPoint;
  };

  class Shard;

  /// Tag for the deferred-start constructor CreateFromCheckpoint uses:
  /// members are built but no worker thread runs until StartWorkers(),
  /// so restore can write shard state without synchronization.
  struct DeferWorkersTag {};
  StreamEngine(const StreamEngineOptions& options, TaggedSegmentSink sink,
               DeferWorkersTag);
  void StartWorkers();

  std::size_t ShardOf(traj::ObjectId id) const;
  /// Appends to the shard's staging batch, flushing it when full.
  void Route(std::size_t shard, const Update& u);
  /// Pushes one shard's staging batch into its ring, blocking (yield
  /// loop) while the ring is full — the backpressure path.
  void FlushShard(std::size_t shard);
  /// Blocks until every shard has consumed everything handed to it.
  void WaitDrained();
  void WorkerLoop(std::size_t worker_index);

  StreamEngineOptions options_;
  TaggedSegmentSink sink_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::vector<Update>> staging_;  ///< producer-side, per shard
  std::vector<std::uint64_t> pushed_;         ///< per shard, producer-side
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
  /// Cross-shard live-object census, updated by workers on object
  /// open/finish (object-lifecycle frequency, not per point).
  std::atomic<std::uint64_t> live_objects_{0};
  std::atomic<std::uint64_t> peak_live_{0};
  bool closed_ = false;
  StreamEngineStats stats_;  ///< aggregated in Close()
};

}  // namespace operb::engine

#endif  // OPERB_ENGINE_STREAM_ENGINE_H_
