#ifndef OPERB_ENGINE_STREAM_ENGINE_H_
#define OPERB_ENGINE_STREAM_ENGINE_H_

/// \file
/// Sharded multi-object streaming simplification engine and its
/// options, stats and sink types.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/spec.h"
#include "common/result.h"
#include "common/status.h"
#include "geo/point.h"
#include "store/env.h"
#include "traj/multi_object.h"
#include "traj/piecewise.h"

namespace operb::engine {

/// Output callback of the engine: one determined segment of one object.
/// Invoked from worker threads — concurrently for objects on different
/// shards, serially (and in emission order) for any single object. The
/// callback must therefore be thread-safe across objects; per-object it
/// sees exactly the segment sequence the single-stream sink path emits.
using TaggedSegmentSink =
    std::function<void(traj::ObjectId, const traj::RepresentedSegment&)>;

/// Time-annotated output callback, available when
/// StreamEngineOptions::track_segment_times is on: the same segment
/// stream as TaggedSegmentSink, each segment carrying the timestamps of
/// the original points at its first/last index — i.e. exactly what a
/// store::StoreWriter::Append wants. Same threading contract as
/// TaggedSegmentSink.
using TimedSegmentSink = std::function<void(const traj::TimedSegment&)>;

/// Callback of the tail-snapshot seam (SnapshotShardTails /
/// SnapshotObjectTail): invoked once per visited live object — in
/// ascending object-id order — with the segments a FinishObject at the
/// snapshot point would emit ("the in-flight tail"; possibly empty).
/// Runs on the shard's worker thread while the producer blocks, so the
/// shard is provably between updates: anything the visitor reads of its
/// own data structures is consistent with exactly the update prefix the
/// worker has processed. The span is only valid during the call.
using TailSnapshotVisitor =
    std::function<void(traj::ObjectId, std::span<const traj::TimedSegment>)>;

/// Configuration of a StreamEngine.
struct StreamEngineOptions {
  /// Per-object simplifier, resolved through api::AlgorithmRegistry.
  /// Identical in configuration and output to the single-stream
  /// simplifier the same spec constructs (determinism contract below);
  /// the spec's zeta is the engine's error bound. Defaults to OPERB at
  /// zeta 40 with the guarded fidelity.
  api::SimplifierSpec spec;

  /// Number of shards (state-table partitions). Objects map to shards by
  /// a mixed hash of their id; per-object output is independent of this
  /// value (determinism contract), it only controls parallelism and
  /// table sizes.
  std::size_t num_shards = 8;

  /// Worker threads; shard s is owned by thread s % num_threads, so
  /// values above num_shards are clamped. Each shard is only ever
  /// touched by its owning thread — per-object state needs no locks.
  std::size_t num_threads = 1;

  /// Capacity of each shard's input ring (rounded up to a power of two).
  /// A full ring blocks the producer (backpressure), it never drops.
  std::size_t ring_capacity = 8192;

  /// Producer-side staging batch per shard: updates are handed to a ring
  /// in blocks of up to this many, amortizing the atomic hand-off.
  /// Points can therefore sit in staging until the batch fills — call
  /// Flush()/Close() (or Tick, which flushes first) to force delivery.
  std::size_t producer_batch = 64;

  /// Watermark-based idle flush: when a Tick(watermark) arrives, every
  /// object whose last point is older than `watermark -
  /// idle_timeout_seconds` is finished and evicted back to the state
  /// pool. 0 disables idle eviction (Tick becomes a no-op).
  double idle_timeout_seconds = 0.0;

  /// Track, per live object, the timestamps of the points since its
  /// last emitted segment boundary (consumer-side, lock-free). This
  /// enables the TimedSegmentSink and the tail-snapshot seam
  /// (SnapshotShardTails) — the features the server's read-your-writes
  /// merge is built on — at the cost of O(open-tail length) doubles per
  /// live object. Checkpoints of a tracking engine are written as
  /// format version 2 (the tail clocks are part of the state) and can
  /// only be restored into a tracking engine, and vice versa.
  bool track_segment_times = false;

  /// Validates parameter ranges and resolves the spec against the
  /// algorithm registry; this is the boundary check that makes engine
  /// construction safe on untrusted configuration (pair with
  /// StreamEngine::Create).
  Status Validate() const;

  std::string ToString() const;
};

/// Aggregate counters of one engine run (valid after Close()).
struct StreamEngineStats {
  std::uint64_t points = 0;            ///< point updates accepted
  std::uint64_t segments = 0;          ///< tagged segments emitted
  std::uint64_t objects_opened = 0;    ///< states created or reused
  std::uint64_t objects_finished = 0;  ///< explicit + idle + close flushes
  std::uint64_t idle_evictions = 0;    ///< flushes caused by Tick watermarks
  std::uint64_t ring_full_stalls = 0;  ///< producer backpressure events
  /// True global maximum of concurrently live states (tracked across
  /// shards at object open/finish — not per point).
  std::uint64_t peak_live_objects = 0;
  /// Total pooled states = sum of per-shard peak live populations (an
  /// upper bound on peak_live_objects when shards peak at different
  /// times).
  std::uint64_t states_allocated = 0;
};

/// Sharded multi-object streaming simplification engine.
///
/// Routes an interleaved stream of (object_id, point) updates from many
/// concurrently moving objects to per-object simplifier states — any of
/// the library's 10 algorithms — partitioned by hash(object_id) %
/// num_shards across a fixed worker-thread pool:
///
///   Push/Tick (producer thread)
///     └─ per-shard staging batch ──SPSC ring──► worker thread
///          └─ shard: open-addressing table object_id → pooled
///             StreamingSimplifier state ──► TaggedSegmentSink
///
/// Determinism contract: for every object, the emitted segment sequence
/// is bit-identical to running the single-stream sink path over that
/// object's points alone — regardless of shard count, thread count,
/// interleaving with other objects, or scheduling. This holds because an
/// object's updates stay in producer order through exactly one staging
/// buffer, one FIFO ring and one owning worker, and the per-object state
/// is exactly the single-stream simplifier (see DESIGN.md "Sharded
/// multi-object streaming engine").
///
/// Threading contract: Push/FinishObject/Tick/Flush/Close must be called
/// from one producer thread (or externally serialized). The sink runs on
/// worker threads, concurrently across shards.
///
/// Steady-state cost: after warm-up (state pool and table grown to the
/// live-object working set), a point update performs no heap allocation
/// for the one-pass algorithms — the ring slots, the table and the
/// pooled states are all reused.
class StreamEngine {
 public:
  /// Status-returning construction for untrusted configuration: validates
  /// `options` (including the spec, against the registry) and returns
  /// InvalidArgument/NotFound instead of aborting. The boundary entry
  /// point used by api::Pipeline and operb_cli.
  static Result<std::unique_ptr<StreamEngine>> Create(
      const StreamEngineOptions& options, TaggedSegmentSink sink);

  /// Reconstructs an engine mid-stream from a file Checkpoint() wrote.
  /// `options` must describe the same engine: the simplifier spec and
  /// shard count are embedded in the checkpoint and checked
  /// (InvalidArgument on mismatch; thread count, ring sizing and idle
  /// timeout may differ — they never affect per-object output, see the
  /// determinism contract). Corruption on a damaged, truncated or
  /// foreign file; InvalidArgument on an unsupported checkpoint
  /// version. Worker threads start only after every per-object state is
  /// rebuilt, so the first post-restore Push() continues each
  /// trajectory exactly where the checkpoint cut it: replaying the
  /// stream's remainder emits bit-identical segments to the
  /// uninterrupted run.
  static Result<std::unique_ptr<StreamEngine>> CreateFromCheckpoint(
      const std::string& path, const StreamEngineOptions& options,
      TaggedSegmentSink sink);

  /// Precondition: options.Validate().ok() (checked — use Create() when
  /// the options come from user input). The engine starts its worker
  /// threads immediately; `sink` may be empty (segments are then only
  /// counted).
  StreamEngine(const StreamEngineOptions& options, TaggedSegmentSink sink);

  /// Implicitly Close()s if the caller has not.
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Installs the time-annotated sink. Requires
  /// options.track_segment_times (checked) and must be called before
  /// the first Push — the workers only read it after popping an update
  /// handed off later, which is what makes the unsynchronized install
  /// safe. May be empty (timed emission is then skipped).
  void SetTimedSink(TimedSegmentSink sink);

  /// Feeds one update. Timestamps must be strictly increasing per object.
  void Push(traj::ObjectId id, const geo::Point& p);

  /// Feeds a batch of interleaved updates.
  void Push(std::span<const traj::ObjectUpdate> updates);

  /// Declares end-of-stream for one object: its state is flushed (the
  /// sink receives its remaining segments) and returned to the pool. An
  /// unknown id is a no-op; pushing the id again later starts a fresh
  /// trajectory.
  void FinishObject(traj::ObjectId id);

  /// Advances the event-time watermark: every shard flushes objects idle
  /// for longer than options.idle_timeout_seconds (no-op when that is 0).
  /// Ordered after everything pushed before it.
  void Tick(double watermark);

  /// Hands all staged updates to the shard rings (delivery barrier is
  /// still asynchronous; Close() is the only completion barrier).
  void Flush();

  /// Writes a consistent snapshot of the complete streaming state —
  /// every live object's simplifier state, engine and shard counters —
  /// to `path`, durably (temp file + rename through the store Env
  /// seam, DESIGN.md §9). The call is a drain barrier: everything
  /// pushed before it is fully processed first, so the snapshot is
  /// exactly "the engine after the stream's prefix" and the engine
  /// keeps running afterwards. Producer-thread only, like Push().
  /// InvalidArgument on a closed engine; IOError when the write or the
  /// rename fails (no partial checkpoint is left at `path` — at most a
  /// stale `path + ".tmp"`). `env` is the write-side filesystem seam;
  /// nullptr uses the real filesystem.
  Status Checkpoint(const std::string& path, store::Env* env = nullptr);

  /// Visits the in-flight tail of every live object on `shard` (see
  /// TailSnapshotVisitor): each live simplifier state is serialized,
  /// deserialized into a scratch state of the same spec and
  /// clone-finished, so the visited segments are bit-identical to what
  /// FinishObject would emit — without perturbing the live state. The
  /// snapshot request rides the shard's own FIFO ring (staged updates
  /// for the shard are flushed first), making it a read-your-writes
  /// barrier for everything pushed before the call while staying
  /// drain-free: no other shard is touched, no global barrier is taken.
  /// Producer-thread only, like Push(). Blocks until the worker has run
  /// the visitor (bounded by the shard's queue depth). InvalidArgument
  /// on a closed engine, a shard out of range, an empty visitor, or
  /// when options.track_segment_times is off.
  Status SnapshotShardTails(std::size_t shard,
                            const TailSnapshotVisitor& visitor);

  /// SnapshotShardTails restricted to one object: only `id`'s tail is
  /// cloned and visited (no call when the object is not live). The
  /// cheap form behind single-object queries.
  Status SnapshotObjectTail(traj::ObjectId id,
                            const TailSnapshotVisitor& visitor);

  /// Live objects right now — a relaxed read of the cross-shard census,
  /// no drain barrier (unlike stats(), which requires Close()).
  std::uint64_t LiveObjectCount() const {
    return live_objects_.load(std::memory_order_relaxed);
  }

  /// Updates handed to `shard`'s ring and not yet consumed — the
  /// flow-control signal (server BUSY admission). Drain-free and
  /// approximate by nature: producer-staged updates are not counted
  /// until FlushShard hands them off, and the consumer count is a
  /// moment-in-time read. Precondition: shard < options().num_shards.
  std::uint64_t RingOccupancy(std::size_t shard) const;

  /// Actual per-shard ring capacity (options.ring_capacity rounded up
  /// to a power of two) — the denominator for RingOccupancy thresholds.
  std::size_t RingCapacity() const;

  /// Finishes every live object, drains all rings, stops the workers and
  /// joins them. Idempotent. After Close() the engine only serves
  /// stats().
  void Close();

  bool closed() const { return closed_; }

  /// Aggregate counters; requires closed().
  const StreamEngineStats& stats() const;

  const StreamEngineOptions& options() const { return options_; }

 private:
  enum class Kind : std::uint8_t { kPoint, kFinish, kTick, kCloseAll,
                                   kSnapshot };

  struct TailSnapshotRequest;

  /// One ring entry. For kTick, point.t carries the watermark; for
  /// kSnapshot, `snap` points at the producer-owned request (the
  /// producer blocks on its done flag, so the pointer outlives the
  /// worker's use).
  struct Update {
    traj::ObjectId id = 0;
    geo::Point point;
    Kind kind = Kind::kPoint;
    TailSnapshotRequest* snap = nullptr;
  };

  class Shard;

  /// Tag for the deferred-start constructor CreateFromCheckpoint uses:
  /// members are built but no worker thread runs until StartWorkers(),
  /// so restore can write shard state without synchronization.
  struct DeferWorkersTag {};
  StreamEngine(const StreamEngineOptions& options, TaggedSegmentSink sink,
               DeferWorkersTag);
  void StartWorkers();

  std::size_t ShardOf(traj::ObjectId id) const;
  /// Appends to the shard's staging batch, flushing it when full.
  void Route(std::size_t shard, const Update& u);
  /// Pushes one shard's staging batch into its ring, blocking (yield
  /// loop) while the ring is full — the backpressure path.
  void FlushShard(std::size_t shard);
  /// Blocks until every shard has consumed everything handed to it.
  void WaitDrained();
  void WorkerLoop(std::size_t worker_index);
  /// Common body of the two tail-snapshot entry points: flushes the
  /// shard's staging, enqueues the request, waits for the worker.
  Status SnapshotImpl(std::size_t shard, const traj::ObjectId* only,
                      const TailSnapshotVisitor& visitor);

  StreamEngineOptions options_;
  TaggedSegmentSink sink_;
  TimedSegmentSink timed_sink_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::vector<Update>> staging_;  ///< producer-side, per shard
  /// Per-shard hand-off counts. Written by the producer only; atomic so
  /// RingOccupancy can subtract the consumer's processed count from any
  /// thread without the drain barrier.
  std::vector<std::atomic<std::uint64_t>> pushed_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
  /// Cross-shard live-object census, updated by workers on object
  /// open/finish (object-lifecycle frequency, not per point).
  std::atomic<std::uint64_t> live_objects_{0};
  std::atomic<std::uint64_t> peak_live_{0};
  bool closed_ = false;
  StreamEngineStats stats_;  ///< aggregated in Close()
};

}  // namespace operb::engine

#endif  // OPERB_ENGINE_STREAM_ENGINE_H_
