#include "engine/stream_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <utility>

#include "api/registry.h"
#include "baselines/streaming.h"
#include "common/check.h"
#include "common/serial.h"
#include "engine/spsc_ring.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace operb::engine {

namespace {

/// Consumer-side batch size per ring Pop.
constexpr std::size_t kConsumerBatch = 256;
/// Batches a worker drains from one shard before moving on (fairness cap
/// so one hot shard cannot starve the thread's other shards).
constexpr int kMaxBatchesPerShard = 4;
/// Idle workers yield this many times before sleeping.
constexpr int kIdleSpinsBeforeSleep = 64;
constexpr std::chrono::microseconds kIdleSleep{200};
constexpr std::chrono::microseconds kDrainPoll{50};

/// Engine checkpoint file framing (DESIGN.md §9): 8-byte magic, version
/// byte, embedded spec string and shard count (the compatibility keys),
/// engine counters, per-shard state sections, trailing FNV-1a64.
/// Version 1 is the plain engine; version 2 appends each live object's
/// tail clock (track_segment_times on) so a restored engine keeps
/// emitting correctly timed segments.
constexpr std::uint8_t kCheckpointMagic[8] = {'O', 'P', 'R', 'B',
                                              'C', 'K', 'P', '1'};
constexpr std::uint8_t kCheckpointVersionPlain = 1;
constexpr std::uint8_t kCheckpointVersionTimed = 2;

/// Producer-side wait inside a tail snapshot: spin first (the worker
/// usually answers within microseconds), then sleep-poll.
constexpr int kSnapshotSpinsBeforeSleep = 256;
constexpr std::chrono::microseconds kSnapshotPoll{20};

Status TruncatedCheckpoint() {
  return Status::Corruption("truncated engine checkpoint");
}

/// Registry instruments for the engine hot paths (DESIGN.md §10). All
/// updates are amortized: points fold per producer batch in FlushShard,
/// never per point, and the ring-occupancy high-water is sampled at the
/// same cadence — the per-point cost of instrumentation is a fraction
/// of a relaxed fetch_add. Yield counters sit inside stall loops that
/// are already off the fast path.
struct EngineMetrics {
  obs::Counter* points_routed;
  obs::Counter* backpressure_yields;
  obs::Counter* objects_finished;
  obs::Counter* states_evicted;
  obs::Counter* states_restored;
  obs::MaxGauge* ring_occupancy_hwm;
  obs::LatencyHistogram* checkpoint_write_ns;
  obs::LatencyHistogram* checkpoint_restore_ns;
};

EngineMetrics& GetEngineMetrics() {
  static EngineMetrics* const m = [] {
    auto& r = obs::MetricsRegistry::Global();
    return new EngineMetrics{
        r.GetCounter("engine.points_routed"),
        r.GetCounter("engine.backpressure_yields"),
        r.GetCounter("engine.objects_finished"),
        r.GetCounter("engine.states_evicted"),
        r.GetCounter("engine.states_restored"),
        r.GetMaxGauge("engine.ring_occupancy_hwm"),
        r.GetHistogram("engine.checkpoint.write_ns"),
        r.GetHistogram("engine.checkpoint.restore_ns"),
    };
  }();
  return *m;
}

}  // namespace

Status StreamEngineOptions::Validate() const {
  // Registry resolution covers the algorithm name, zeta range and the
  // algorithm-specific option keys/values.
  OPERB_RETURN_IF_ERROR(api::AlgorithmRegistry::Global().Validate(spec));
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  if (ring_capacity < 2) {
    return Status::InvalidArgument("ring_capacity must be >= 2");
  }
  if (producer_batch == 0) {
    return Status::InvalidArgument("producer_batch must be >= 1");
  }
  if (idle_timeout_seconds < 0.0) {
    return Status::InvalidArgument("idle_timeout_seconds must be >= 0");
  }
  return Status::OK();
}

std::string StreamEngineOptions::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "StreamEngineOptions{%s shards=%zu threads=%zu "
                "ring=%zu batch=%zu idle_timeout=%gs%s}",
                spec.ToString().c_str(), num_shards, num_threads,
                ring_capacity, producer_batch, idle_timeout_seconds,
                track_segment_times ? " timed" : "");
  return buf;
}

/// The producer-owned half of a tail snapshot: what to visit, and the
/// flag the worker releases when the visitor has run.
struct StreamEngine::TailSnapshotRequest {
  const TailSnapshotVisitor* visitor = nullptr;
  bool filter = false;          ///< visit only `filter_id`
  traj::ObjectId filter_id = 0;
  std::atomic<bool> done{false};
};

/// One state-table partition, owned by exactly one worker thread. All
/// members below `ring`/`processed` are consumer-side only, so the hot
/// path (table probe + state Push) is lock-free and unsynchronized.
class StreamEngine::Shard {
 public:
  Shard(const StreamEngineOptions& options,
        const api::AlgorithmRegistry::Entry* algorithm,
        const TaggedSegmentSink* sink, const TimedSegmentSink* timed_sink,
        std::atomic<std::uint64_t>* live, std::atomic<std::uint64_t>* peak)
      : ring(options.ring_capacity),
        options_(options),
        algorithm_(algorithm),
        sink_(sink),
        timed_sink_(timed_sink),
        live_census_(live),
        peak_census_(peak),
        slots_(kInitialSlots) {
    run_points_.reserve(kConsumerBatch);
  }

  SpscRing<Update> ring;
  /// Updates consumed, released after each processed batch; the producer
  /// compares it against its hand-off count to implement Close()'s drain
  /// barrier.
  std::atomic<std::uint64_t> processed{0};

  /// Processes one consumer batch, coalescing consecutive kPoint updates
  /// for the same object into a single span Push. Interleaved streams
  /// (different ids, or control updates between points) degrade to the
  /// point-wise path; a single producer replaying one trajectory gets
  /// runs the length of the ring batch, which is what lets the batched
  /// SIMD staging inside OperbStream::Push(span) see real windows
  /// instead of singletons.
  void ProcessBatch(const Update* updates, std::size_t n) {
    std::size_t i = 0;
    while (i < n) {
      const Update& u = updates[i];
      if (u.kind != Kind::kPoint) {
        Process(u);
        ++i;
        continue;
      }
      std::size_t j = i + 1;
      while (j < n && updates[j].kind == Kind::kPoint &&
             updates[j].id == u.id) {
        ++j;
      }
      if (j - i == 1) {
        Process(u);
      } else {
        // Ring entries are strided Updates; the span path needs
        // contiguous points. run_points_ is reused across batches, so
        // this copy allocates nothing once warm.
        run_points_.clear();
        for (std::size_t k = i; k < j; ++k) {
          run_points_.push_back(updates[k].point);
        }
        ProcessPointRun(u.id, run_points_.data(), j - i);
      }
      i = j;
    }
  }

  void Process(const Update& u) {
    switch (u.kind) {
      case Kind::kPoint: {
        Slot& s = FindOrCreate(u.id);
        current_id_ = u.id;
        current_state_ = s.state;
        // The clock entry must exist before Push: the state may emit a
        // segment ending at this very point.
        if (options_.track_segment_times) {
          clocks_[s.state].Append(u.point.t);
        }
        states_[s.state]->Push(u.point);
        s.last_time = u.point.t;
        break;
      }
      case Kind::kFinish: {
        Slot* s = Find(u.id);
        if (s != nullptr) FinishSlot(*s, /*idle=*/false);
        break;
      }
      case Kind::kTick: {
        if (options_.idle_timeout_seconds <= 0.0) break;
        const double cutoff = u.point.t - options_.idle_timeout_seconds;
        for (Slot& s : slots_) {
          if (s.status == kOccupied && s.last_time <= cutoff) {
            FinishSlot(s, /*idle=*/true);
          }
        }
        break;
      }
      case Kind::kCloseAll: {
        for (Slot& s : slots_) {
          if (s.status == kOccupied) FinishSlot(s, /*idle=*/false);
        }
        break;
      }
      case Kind::kSnapshot: {
        HandleSnapshot(*u.snap);
        u.snap->done.store(true, std::memory_order_release);
        break;
      }
    }
  }

  /// Span-path mirror of the kPoint case in Process(): one slot lookup
  /// and one state Push for the whole same-id run. All of the run's
  /// timestamps are appended to the tail clock BEFORE the Push — the
  /// state may emit mid-span, and TailClock::At addresses by absolute
  /// point index, so entries past the emitted segment are simply not
  /// read yet. Side effects (current_id_/current_state_, last_time,
  /// clock contents at every emission point) match the point-wise path
  /// exactly.
  void ProcessPointRun(traj::ObjectId id, const geo::Point* pts,
                       std::size_t n) {
    Slot& s = FindOrCreate(id);
    current_id_ = id;
    current_state_ = s.state;
    if (options_.track_segment_times) {
      TailClock& clock = clocks_[s.state];
      for (std::size_t k = 0; k < n; ++k) clock.Append(pts[k].t);
    }
    states_[s.state]->Push(std::span<const geo::Point>(pts, n));
    s.last_time = pts[n - 1].t;
  }

  /// Runs a tail snapshot on this worker thread: every live (and
  /// matching, when filtered) slot's state is serialized, cloned into
  /// the scratch state and finished; the clone's emissions — timed via
  /// the slot's tail clock, which is read but never advanced — go to
  /// the request's visitor in ascending object-id order. The live state
  /// is never touched, so processing resumes as if the snapshot had
  /// not happened.
  void HandleSnapshot(const TailSnapshotRequest& req) {
    std::vector<const Slot*> live;
    live.reserve(req.filter ? 1 : live_);
    for (const Slot& s : slots_) {
      if (s.status != kOccupied) continue;
      if (req.filter && s.id != req.filter_id) continue;
      live.push_back(&s);
    }
    std::sort(live.begin(), live.end(),
              [](const Slot* a, const Slot* b) { return a->id < b->id; });
    for (const Slot* s : live) {
      snapshot_blob_.clear();
      states_[s->state]->Serialize(&snapshot_blob_);
      EnsureScratch();
      scratch_->Reset();
      std::size_t pos = 0;
      const Status restored = scratch_->Deserialize(snapshot_blob_, &pos);
      OPERB_CHECK_MSG(restored.ok(),
                      "tail snapshot: live state failed to round-trip");
      snapshot_raw_.clear();
      scratch_->Finish();
      scratch_->Reset();
      snapshot_tail_.clear();
      snapshot_tail_.reserve(snapshot_raw_.size());
      const TailClock& clock = clocks_[s->state];
      for (const traj::RepresentedSegment& seg : snapshot_raw_) {
        snapshot_tail_.push_back(traj::TimedSegment{
            s->id, seg, clock.At(seg.first_index),
            clock.At(seg.last_index)});
      }
      (*req.visitor)(s->id, std::span<const traj::TimedSegment>(
                                snapshot_tail_));
    }
  }

  /// Appends this shard's checkpoint section: live objects in ascending
  /// id order (canonical, so equal engine states serialize to equal
  /// bytes regardless of table history), each as id + last event time +
  /// length-prefixed simplifier state blob, then the shard counters.
  /// Caller must hold the drain barrier (Checkpoint() does) — the
  /// owning worker is then provably idle.
  void SerializeState(std::vector<std::uint8_t>* out) const {
    std::vector<const Slot*> live;
    live.reserve(live_);
    for (const Slot& s : slots_) {
      if (s.status == kOccupied) live.push_back(&s);
    }
    std::sort(live.begin(), live.end(),
              [](const Slot* a, const Slot* b) { return a->id < b->id; });
    serial::PutU64(live.size(), out);
    std::vector<std::uint8_t> blob;
    for (const Slot* s : live) {
      serial::PutU64(s->id, out);
      serial::PutF64(s->last_time, out);
      blob.clear();
      states_[s->state]->Serialize(&blob);
      serial::PutU32(static_cast<std::uint32_t>(blob.size()), out);
      out->insert(out->end(), blob.begin(), blob.end());
      if (options_.track_segment_times) {
        // Version-2 extra: the object's tail clock, logically (base
        // index, window) — physical compaction offsets never leak into
        // the bytes, keeping equal states byte-equal.
        const TailClock& clock = clocks_[s->state];
        serial::PutU64(clock.base, out);
        serial::PutU64(clock.size(), out);
        for (std::size_t i = 0; i < clock.size(); ++i) {
          serial::PutF64(clock.At(clock.base + i), out);
        }
      }
    }
    serial::PutU64(segments_, out);
    serial::PutU64(objects_opened_, out);
    serial::PutU64(objects_finished_, out);
    serial::PutU64(idle_evictions_, out);
  }

  /// Rebuilds the shard from its checkpoint section (before the workers
  /// start; thread creation publishes the restored state to the owning
  /// worker). Each blob is handed to a freshly pooled state's
  /// Deserialize, which enforces the blob's own magic/version/zeta
  /// framing; counters are then overwritten with the checkpointed
  /// values so a resumed run's totals match the uninterrupted run.
  Status RestoreState(std::span<const std::uint8_t> in, std::size_t* pos) {
    std::uint64_t count = 0;
    if (!serial::GetU64(in, pos, &count)) return TruncatedCheckpoint();
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t id = 0;
      double last_time = 0.0;
      std::uint32_t blob_len = 0;
      if (!serial::GetU64(in, pos, &id) ||
          !serial::GetF64(in, pos, &last_time) ||
          !serial::GetU32(in, pos, &blob_len)) {
        return TruncatedCheckpoint();
      }
      if (in.size() - *pos < blob_len) return TruncatedCheckpoint();
      Slot& s = FindOrCreate(id);
      s.last_time = last_time;
      // Bound the blob's span to its declared length so a state that
      // (wrongly) reads long lands on truncation, not the next record.
      std::size_t blob_pos = *pos;
      OPERB_RETURN_IF_ERROR(
          states_[s.state]->Deserialize(in.first(*pos + blob_len),
                                        &blob_pos));
      if (blob_pos != *pos + blob_len) {
        return Status::Corruption(
            "checkpoint state blob length disagrees with its contents");
      }
      *pos += blob_len;
      if (options_.track_segment_times) {
        TailClock& clock = clocks_[s.state];
        clock.Clear();
        std::uint64_t times = 0;
        if (!serial::GetU64(in, pos, &clock.base) ||
            !serial::GetU64(in, pos, &times)) {
          return TruncatedCheckpoint();
        }
        for (std::uint64_t t = 0; t < times; ++t) {
          double value = 0.0;
          if (!serial::GetF64(in, pos, &value)) return TruncatedCheckpoint();
          clock.Append(value);
        }
      }
    }
    if (!serial::GetU64(in, pos, &segments_) ||
        !serial::GetU64(in, pos, &objects_opened_) ||
        !serial::GetU64(in, pos, &objects_finished_) ||
        !serial::GetU64(in, pos, &idle_evictions_)) {
      return TruncatedCheckpoint();
    }
    return Status::OK();
  }

  /// Folds this shard's counters into `out` (call after the workers have
  /// been joined; plain reads are then safe).
  void AccumulateStats(StreamEngineStats* out) const {
    out->segments += segments_;
    out->objects_opened += objects_opened_;
    out->objects_finished += objects_finished_;
    out->idle_evictions += idle_evictions_;
    out->states_allocated += states_.size();
  }

 private:
  static constexpr std::size_t kInitialSlots = 64;
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kOccupied = 1;
  static constexpr std::uint8_t kTombstone = 2;

  /// Open-addressing slot: object id -> pooled state index, plus the
  /// event time of the object's latest point (for watermark eviction).
  struct Slot {
    traj::ObjectId id = 0;
    std::uint32_t state = 0;
    double last_time = 0.0;
    std::uint8_t status = kEmpty;
  };

  std::size_t Mask() const { return slots_.size() - 1; }

  /// Double-mixed so the table mask sees bits independent of the shard
  /// modulus (with power-of-two shard counts the low bits of one mix
  /// are constant within a shard).
  static std::size_t TableHash(traj::ObjectId id) {
    return static_cast<std::size_t>(
        traj::MixObjectId(traj::MixObjectId(id)));
  }

  Slot* Find(traj::ObjectId id) {
    std::size_t i = TableHash(id) & Mask();
    for (;;) {
      Slot& s = slots_[i];
      if (s.status == kEmpty) return nullptr;
      if (s.status == kOccupied && s.id == id) return &s;
      i = (i + 1) & Mask();
    }
  }

  Slot& FindOrCreate(traj::ObjectId id) {
    // Grow at 3/4 occupancy of used (live + tombstone) slots so linear
    // probing stays short; growth also clears the tombstones.
    if ((used_ + 1) * 4 >= slots_.size() * 3) Grow();
    std::size_t i = TableHash(id) & Mask();
    std::size_t first_tombstone = std::numeric_limits<std::size_t>::max();
    for (;;) {
      Slot& s = slots_[i];
      if (s.status == kOccupied && s.id == id) return s;
      if (s.status == kEmpty) {
        const bool reuse_tombstone =
            first_tombstone != std::numeric_limits<std::size_t>::max();
        Slot& target = reuse_tombstone ? slots_[first_tombstone] : s;
        if (!reuse_tombstone) ++used_;
        target.id = id;
        target.state = AcquireState();
        target.last_time = 0.0;
        target.status = kOccupied;
        ++live_;
        ++objects_opened_;
        // Global live-object census (object-open frequency, not per
        // point): lock-free running count + CAS-max for the true peak.
        const std::uint64_t now =
            live_census_->fetch_add(1, std::memory_order_relaxed) + 1;
        std::uint64_t prev = peak_census_->load(std::memory_order_relaxed);
        while (prev < now &&
               !peak_census_->compare_exchange_weak(
                   prev, now, std::memory_order_relaxed)) {
        }
        return target;
      }
      if (s.status == kTombstone &&
          first_tombstone == std::numeric_limits<std::size_t>::max()) {
        first_tombstone = i;
      }
      i = (i + 1) & Mask();
    }
  }

  void Grow() {
    // Double only when the *live* population needs the room; when the
    // 3/4 trigger was reached mostly through tombstones (object churn
    // with a small live set), rehash at the same size — that clears the
    // tombstones and keeps the table O(peak live), not O(ids ever seen).
    std::vector<Slot> old = std::move(slots_);
    const std::size_t new_size =
        live_ * 2 >= old.size() ? old.size() * 2 : old.size();
    slots_.assign(new_size, Slot{});
    used_ = live_;
    for (const Slot& s : old) {
      if (s.status != kOccupied) continue;
      std::size_t i = TableHash(s.id) & Mask();
      while (slots_[i].status == kOccupied) i = (i + 1) & Mask();
      slots_[i] = s;
    }
  }

  /// Pops a pooled state or creates one. A created state is wired to the
  /// engine sink exactly once; `current_id_` tags its emissions for
  /// whichever object currently drives it.
  std::uint32_t AcquireState() {
    if (!free_states_.empty()) {
      const std::uint32_t idx = free_states_.back();
      free_states_.pop_back();
      return idx;
    }
    const std::uint32_t idx = static_cast<std::uint32_t>(states_.size());
    // The entry was resolved (and the spec validated) once at engine
    // construction; invoking its factory directly keeps cold-start state
    // creation free of registry lookups and mutex traffic on the shard
    // threads. A null product past validation is an internal invariant
    // violation.
    std::unique_ptr<baselines::StreamingSimplifier> state =
        algorithm_->streaming(options_.spec);
    OPERB_CHECK_MSG(state != nullptr, "streaming factory returned null");
    states_.push_back(std::move(state));
    if (options_.track_segment_times) clocks_.emplace_back();
    states_.back()->SetSink([this](const traj::RepresentedSegment& seg) {
      ++segments_;
      if (options_.track_segment_times) {
        TailClock& clock = clocks_[current_state_];
        if (timed_sink_ != nullptr && *timed_sink_) {
          (*timed_sink_)(traj::TimedSegment{current_id_, seg,
                                            clock.At(seg.first_index),
                                            clock.At(seg.last_index)});
        }
        // The next segment starts at this one's last index; everything
        // before it can never be referenced again.
        clock.DropBefore(seg.last_index);
      }
      if (*sink_) (*sink_)(current_id_, seg);
    });
    return idx;
  }

  void FinishSlot(Slot& s, bool idle) {
    current_id_ = s.id;
    current_state_ = s.state;
    baselines::StreamingSimplifier& state = *states_[s.state];
    state.Finish();
    state.Reset();
    if (options_.track_segment_times) clocks_[s.state].Clear();
    free_states_.push_back(s.state);
    s.status = kTombstone;
    --live_;
    live_census_->fetch_sub(1, std::memory_order_relaxed);
    ++objects_finished_;
    if (idle) ++idle_evictions_;
    if constexpr (obs::kMetricsEnabled) {
      EngineMetrics& m = GetEngineMetrics();
      m.objects_finished->Increment();
      if (idle) m.states_evicted->Increment();
    }
  }

  /// Timestamps of one object's points since its last emitted segment
  /// boundary, addressed by absolute point index. `base` is the
  /// absolute index of the window's first entry; DropBefore compacts
  /// the backing vector lazily (offset first, erase when the dead
  /// prefix dominates) so per-segment upkeep is amortized O(1).
  struct TailClock {
    std::uint64_t base = 0;
    std::size_t off = 0;
    std::vector<double> times;

    void Append(double t) { times.push_back(t); }
    std::size_t size() const { return times.size() - off; }
    double At(std::uint64_t index) const {
      OPERB_DCHECK(index >= base && index - base < size());
      return times[off + static_cast<std::size_t>(index - base)];
    }
    void DropBefore(std::uint64_t index) {
      OPERB_DCHECK(index >= base && index - base <= size());
      off += static_cast<std::size_t>(index - base);
      base = index;
      if (off > times.size() / 2) {
        times.erase(times.begin(),
                    times.begin() + static_cast<std::ptrdiff_t>(off));
        off = 0;
      }
    }
    void Clear() {
      base = 0;
      off = 0;
      times.clear();
    }
  };

  /// Creates the snapshot scratch state on first use: same spec, sink
  /// wired once to collect raw emissions into snapshot_raw_.
  void EnsureScratch() {
    if (scratch_ != nullptr) return;
    scratch_ = algorithm_->streaming(options_.spec);
    OPERB_CHECK_MSG(scratch_ != nullptr, "streaming factory returned null");
    scratch_->SetSink([this](const traj::RepresentedSegment& seg) {
      snapshot_raw_.push_back(seg);
    });
  }

  const StreamEngineOptions& options_;
  const api::AlgorithmRegistry::Entry* algorithm_;
  const TaggedSegmentSink* sink_;
  const TimedSegmentSink* timed_sink_;
  std::atomic<std::uint64_t>* live_census_;
  std::atomic<std::uint64_t>* peak_census_;

  std::vector<Slot> slots_;
  std::size_t live_ = 0;
  std::size_t used_ = 0;  ///< occupied + tombstone slots
  std::vector<std::unique_ptr<baselines::StreamingSimplifier>> states_;
  /// Parallel to states_ when track_segment_times is on (else empty).
  std::vector<TailClock> clocks_;
  std::vector<std::uint32_t> free_states_;
  /// Contiguous staging for ProcessBatch's same-id point runs (ring
  /// entries are strided Updates). Capacity-stable once warm.
  std::vector<geo::Point> run_points_;
  traj::ObjectId current_id_ = 0;
  std::uint32_t current_state_ = 0;

  /// Tail-snapshot scratch (consumer-side, reused across snapshots).
  std::unique_ptr<baselines::StreamingSimplifier> scratch_;
  std::vector<std::uint8_t> snapshot_blob_;
  std::vector<traj::RepresentedSegment> snapshot_raw_;
  std::vector<traj::TimedSegment> snapshot_tail_;

  std::uint64_t segments_ = 0;
  std::uint64_t objects_opened_ = 0;
  std::uint64_t objects_finished_ = 0;
  std::uint64_t idle_evictions_ = 0;
};

Result<std::unique_ptr<StreamEngine>> StreamEngine::Create(
    const StreamEngineOptions& options, TaggedSegmentSink sink) {
  OPERB_RETURN_IF_ERROR(options.Validate());
  return std::make_unique<StreamEngine>(options, std::move(sink));
}

Status StreamEngine::Checkpoint(const std::string& path, store::Env* env) {
  if (closed_) {
    return Status::InvalidArgument("checkpoint of a closed engine");
  }
  obs::ScopedTimer write_timer(
      obs::kMetricsEnabled ? GetEngineMetrics().checkpoint_write_ns
                           : nullptr);
  obs::TraceSpan span("engine.checkpoint");
  // Drain barrier: hand every staged update to the rings, then wait for
  // each shard's processed count (released by the worker after the
  // batch) to reach the hand-off count. After it, every worker is
  // provably idle and its shard state is the deterministic function of
  // the stream prefix pushed so far — the state the snapshot captures.
  Flush();
  WaitDrained();

  std::vector<std::uint8_t> buf;
  // Byte-wise append: vector::insert from a constexpr array trips
  // GCC 12's -Wstringop-overflow false positive under -fsanitize=thread.
  for (const std::uint8_t b : kCheckpointMagic) buf.push_back(b);
  serial::PutU8(options_.track_segment_times ? kCheckpointVersionTimed
                                             : kCheckpointVersionPlain,
                &buf);
  const std::string spec = options_.spec.ToString();
  serial::PutU32(static_cast<std::uint32_t>(spec.size()), &buf);
  buf.insert(buf.end(), spec.begin(), spec.end());
  serial::PutU64(options_.num_shards, &buf);
  serial::PutU64(stats_.points, &buf);
  serial::PutU64(stats_.ring_full_stalls, &buf);
  serial::PutU64(peak_live_.load(std::memory_order_relaxed), &buf);
  for (const auto& shard : shards_) shard->SerializeState(&buf);
  serial::PutU64(serial::Fnv1a64(buf), &buf);

  // Same durability discipline as a manifest commit: fully write and
  // flush a temp file, then rename — a crash anywhere leaves either the
  // previous checkpoint or none, never a torn one.
  store::Env* e = store::ResolveEnv(env);
  const std::string tmp = path + ".tmp";
  OPERB_ASSIGN_OR_RETURN(std::unique_ptr<store::WritableFile> file,
                         e->NewWritableFile(tmp));
  const Status written = [&] {
    OPERB_RETURN_IF_ERROR(file->Append(buf));
    OPERB_RETURN_IF_ERROR(file->Flush());
    return file->Close();
  }();
  if (!written.ok()) {
    (void)e->Remove(tmp);
    return written;
  }
  const Status renamed = e->Rename(tmp, path);
  if (!renamed.ok()) {
    (void)e->Remove(tmp);
    return renamed;
  }
  return Status::OK();
}

Result<std::unique_ptr<StreamEngine>> StreamEngine::CreateFromCheckpoint(
    const std::string& path, const StreamEngineOptions& options,
    TaggedSegmentSink sink) {
  OPERB_RETURN_IF_ERROR(options.Validate());
  obs::ScopedTimer restore_timer(
      obs::kMetricsEnabled ? GetEngineMetrics().checkpoint_restore_ns
                           : nullptr);
  obs::TraceSpan span("engine.restore");

  // Reads go through stdio like every store read path; the Env seam
  // covers durable writes only.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open engine checkpoint " + path);
  }
  std::vector<std::uint8_t> data;
  {
    bool read_ok = std::fseek(f, 0, SEEK_END) == 0;
    const long size = read_ok ? std::ftell(f) : -1;
    read_ok = read_ok && size >= 0 && std::fseek(f, 0, SEEK_SET) == 0;
    if (read_ok) {
      data.resize(static_cast<std::size_t>(size));
      read_ok = std::fread(data.data(), 1, data.size(), f) == data.size();
    }
    std::fclose(f);
    if (!read_ok) {
      return Status::IOError("cannot read engine checkpoint " + path);
    }
  }

  // Framing first: magic, then the whole-file checksum, so every later
  // parse step runs over bytes already known to be what was written.
  if (data.size() < sizeof(kCheckpointMagic) + 1 + 8 ||
      !std::equal(kCheckpointMagic, kCheckpointMagic + 8, data.begin())) {
    return Status::Corruption("not an engine checkpoint: " + path);
  }
  const std::span<const std::uint8_t> body(data.data(), data.size() - 8);
  std::size_t tail = body.size();
  std::uint64_t stored_checksum = 0;
  serial::GetU64(data, &tail, &stored_checksum);
  if (serial::Fnv1a64(body) != stored_checksum) {
    return Status::Corruption("engine checkpoint checksum mismatch: " +
                              path);
  }

  std::size_t pos = sizeof(kCheckpointMagic);
  std::uint8_t version = 0;
  if (!serial::GetU8(body, &pos, &version)) return TruncatedCheckpoint();
  if (version != kCheckpointVersionPlain &&
      version != kCheckpointVersionTimed) {
    return Status::InvalidArgument("unsupported engine checkpoint version " +
                                   std::to_string(version));
  }
  const std::uint8_t expected = options.track_segment_times
                                    ? kCheckpointVersionTimed
                                    : kCheckpointVersionPlain;
  if (version != expected) {
    return Status::InvalidArgument(
        "checkpoint version " + std::to_string(version) +
        " disagrees with options.track_segment_times (tail clocks are " +
        (version == kCheckpointVersionTimed ? "present" : "absent") + ")");
  }
  std::uint32_t spec_len = 0;
  if (!serial::GetU32(body, &pos, &spec_len) ||
      body.size() - pos < spec_len) {
    return TruncatedCheckpoint();
  }
  const std::string spec(data.begin() + static_cast<std::ptrdiff_t>(pos),
                         data.begin() + static_cast<std::ptrdiff_t>(pos) +
                             spec_len);
  pos += spec_len;
  if (spec != options.spec.ToString()) {
    return Status::InvalidArgument(
        "checkpoint was written by " + spec + ", options resolve to " +
        options.spec.ToString());
  }
  std::uint64_t num_shards = 0;
  if (!serial::GetU64(body, &pos, &num_shards)) return TruncatedCheckpoint();
  if (num_shards != options.num_shards) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(num_shards) +
        " shards, options ask for " + std::to_string(options.num_shards) +
        " (the object partition would not line up)");
  }

  std::unique_ptr<StreamEngine> engine(
      new StreamEngine(options, std::move(sink), DeferWorkersTag{}));
  std::uint64_t peak = 0;
  if (!serial::GetU64(body, &pos, &engine->stats_.points) ||
      !serial::GetU64(body, &pos, &engine->stats_.ring_full_stalls) ||
      !serial::GetU64(body, &pos, &peak)) {
    return TruncatedCheckpoint();
  }
  engine->peak_live_.store(peak, std::memory_order_relaxed);
  for (const auto& shard : engine->shards_) {
    OPERB_RETURN_IF_ERROR(shard->RestoreState(body, &pos));
  }
  if (pos != body.size()) {
    return Status::Corruption("engine checkpoint has trailing bytes");
  }
  // Restoring bumped the peak census if the live count momentarily
  // exceeded the checkpointed peak mid-rebuild — it cannot (the peak
  // covered these very objects), so re-assert the checkpointed value.
  engine->peak_live_.store(peak, std::memory_order_relaxed);
  if constexpr (obs::kMetricsEnabled) {
    GetEngineMetrics().states_restored->Add(
        engine->live_objects_.load(std::memory_order_relaxed));
  }
  engine->StartWorkers();
  return engine;
}

StreamEngine::StreamEngine(const StreamEngineOptions& options,
                           TaggedSegmentSink sink)
    : StreamEngine(options, std::move(sink), DeferWorkersTag{}) {
  StartWorkers();
}

StreamEngine::StreamEngine(const StreamEngineOptions& options,
                           TaggedSegmentSink sink, DeferWorkersTag)
    : options_(options), sink_(std::move(sink)) {
  OPERB_CHECK_MSG(options_.Validate().ok(), "invalid StreamEngineOptions");
  options_.num_threads = std::min(options_.num_threads, options_.num_shards);
  // Resolve the algorithm once; shards then construct pooled states via
  // the entry's factory without going back through the registry. The
  // pointer is stable (the registry is append-only and process-lived).
  const api::AlgorithmRegistry::Entry* algorithm =
      api::AlgorithmRegistry::Global().Find(options_.spec.algorithm);
  OPERB_CHECK_MSG(algorithm != nullptr, "validated spec has no entry");
  shards_.reserve(options_.num_shards);
  for (std::size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(options_, algorithm, &sink_,
                                              &timed_sink_, &live_objects_,
                                              &peak_live_));
  }
  staging_.resize(options_.num_shards);
  for (auto& batch : staging_) batch.reserve(options_.producer_batch);
  pushed_ = std::vector<std::atomic<std::uint64_t>>(options_.num_shards);
}

void StreamEngine::SetTimedSink(TimedSegmentSink sink) {
  OPERB_CHECK_MSG(options_.track_segment_times,
                  "SetTimedSink requires track_segment_times");
  // "Before the first Push" means no update has been staged or handed
  // to a ring in THIS process — a checkpoint-restored engine carries
  // the prefix's stats_.points but is still safely sink-less until its
  // first post-restore Push.
  bool pushed_any = false;
  for (std::size_t s = 0; s < options_.num_shards; ++s) {
    pushed_any = pushed_any ||
                 pushed_[s].load(std::memory_order_relaxed) != 0 ||
                 !staging_[s].empty();
  }
  OPERB_CHECK_MSG(!pushed_any && !closed_, "SetTimedSink after the first Push");
  timed_sink_ = std::move(sink);
}

void StreamEngine::StartWorkers() {
  workers_.reserve(options_.num_threads);
  for (std::size_t t = 0; t < options_.num_threads; ++t) {
    workers_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

StreamEngine::~StreamEngine() { Close(); }

std::size_t StreamEngine::ShardOf(traj::ObjectId id) const {
  return traj::ShardOfObject(id, options_.num_shards);
}

void StreamEngine::Route(std::size_t shard, const Update& u) {
  std::vector<Update>& batch = staging_[shard];
  batch.push_back(u);
  if (batch.size() >= options_.producer_batch) FlushShard(shard);
}

void StreamEngine::FlushShard(std::size_t shard) {
  std::vector<Update>& batch = staging_[shard];
  if (batch.empty()) return;
  const Update* p = batch.data();
  std::size_t left = batch.size();
  while (left > 0) {
    const std::size_t took = shards_[shard]->ring.TryPush(p, left);
    p += took;
    left -= took;
    if (left > 0) {
      // Ring full: backpressure. The consumer is guaranteed to make
      // progress, so yielding (not dropping, not growing) is sound.
      ++stats_.ring_full_stalls;
      if constexpr (obs::kMetricsEnabled) {
        GetEngineMetrics().backpressure_yields->Increment();
      }
      std::this_thread::yield();
    }
  }
  pushed_[shard].fetch_add(batch.size(), std::memory_order_relaxed);
  if constexpr (obs::kMetricsEnabled) {
    EngineMetrics& m = GetEngineMetrics();
    m.points_routed->Add(batch.size());
    // In-flight updates in this shard's ring right now; sampled per
    // producer batch, so the high-water is a lower bound on the true
    // instantaneous peak.
    m.ring_occupancy_hwm->Observe(static_cast<std::int64_t>(
        pushed_[shard].load(std::memory_order_relaxed) -
        shards_[shard]->processed.load(std::memory_order_relaxed)));
  }
  batch.clear();
}

void StreamEngine::Push(traj::ObjectId id, const geo::Point& p) {
  OPERB_DCHECK(!closed_);
  ++stats_.points;
  Route(ShardOf(id), Update{id, p, Kind::kPoint});
}

void StreamEngine::Push(std::span<const traj::ObjectUpdate> updates) {
  for (const traj::ObjectUpdate& u : updates) Push(u.object_id, u.point);
}

void StreamEngine::FinishObject(traj::ObjectId id) {
  OPERB_DCHECK(!closed_);
  Route(ShardOf(id), Update{id, geo::Point{}, Kind::kFinish});
}

void StreamEngine::Tick(double watermark) {
  OPERB_DCHECK(!closed_);
  Flush();  // everything pushed before the tick must reach the rings first
  const Update tick{0, geo::Point{0.0, 0.0, watermark}, Kind::kTick};
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    while (shards_[s]->ring.TryPush(&tick, 1) == 0) {
      ++stats_.ring_full_stalls;
      if constexpr (obs::kMetricsEnabled) {
        GetEngineMetrics().backpressure_yields->Increment();
      }
      std::this_thread::yield();
    }
    pushed_[s].fetch_add(1, std::memory_order_relaxed);
  }
}

void StreamEngine::Flush() {
  for (std::size_t s = 0; s < staging_.size(); ++s) FlushShard(s);
}

std::uint64_t StreamEngine::RingOccupancy(std::size_t shard) const {
  OPERB_DCHECK(shard < shards_.size());
  const std::uint64_t handed = pushed_[shard].load(std::memory_order_relaxed);
  const std::uint64_t done =
      shards_[shard]->processed.load(std::memory_order_acquire);
  return handed >= done ? handed - done : 0;
}

std::size_t StreamEngine::RingCapacity() const {
  return shards_.front()->ring.capacity();
}

Status StreamEngine::SnapshotShardTails(std::size_t shard,
                                        const TailSnapshotVisitor& visitor) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("tail snapshot shard out of range");
  }
  return SnapshotImpl(shard, nullptr, visitor);
}

Status StreamEngine::SnapshotObjectTail(traj::ObjectId id,
                                        const TailSnapshotVisitor& visitor) {
  return SnapshotImpl(ShardOf(id), &id, visitor);
}

Status StreamEngine::SnapshotImpl(std::size_t shard,
                                  const traj::ObjectId* only,
                                  const TailSnapshotVisitor& visitor) {
  if (closed_) {
    return Status::InvalidArgument("tail snapshot of a closed engine");
  }
  if (!options_.track_segment_times) {
    return Status::InvalidArgument(
        "tail snapshots require track_segment_times");
  }
  if (!visitor) {
    return Status::InvalidArgument("tail snapshot visitor must be callable");
  }
  TailSnapshotRequest req;
  req.visitor = &visitor;
  if (only != nullptr) {
    req.filter = true;
    req.filter_id = *only;
  }
  // Read-your-writes: everything this producer pushed for the shard is
  // handed to the FIFO ring before the marker, so the worker runs the
  // visitor only after processing it all.
  FlushShard(shard);
  Update u;
  u.kind = Kind::kSnapshot;
  u.snap = &req;
  while (shards_[shard]->ring.TryPush(&u, 1) == 0) {
    ++stats_.ring_full_stalls;
    if constexpr (obs::kMetricsEnabled) {
      GetEngineMetrics().backpressure_yields->Increment();
    }
    std::this_thread::yield();
  }
  pushed_[shard].fetch_add(1, std::memory_order_relaxed);
  for (int spins = 0; !req.done.load(std::memory_order_acquire); ++spins) {
    if (spins < kSnapshotSpinsBeforeSleep) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(kSnapshotPoll);
    }
  }
  return Status::OK();
}

void StreamEngine::WaitDrained() {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    while (shards_[s]->processed.load(std::memory_order_acquire) !=
           pushed_[s].load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(kDrainPoll);
    }
  }
}

void StreamEngine::Close() {
  if (closed_) return;
  if (workers_.empty()) {
    // A deferred engine whose restore failed before StartWorkers():
    // nothing runs, nothing is in flight, so closing is bookkeeping.
    for (const auto& shard : shards_) shard->AccumulateStats(&stats_);
    stats_.peak_live_objects = peak_live_.load(std::memory_order_relaxed);
    closed_ = true;
    return;
  }
  Flush();
  const Update close_all{0, geo::Point{}, Kind::kCloseAll};
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    while (shards_[s]->ring.TryPush(&close_all, 1) == 0) {
      ++stats_.ring_full_stalls;
      if constexpr (obs::kMetricsEnabled) {
        GetEngineMetrics().backpressure_yields->Increment();
      }
      std::this_thread::yield();
    }
    pushed_[s].fetch_add(1, std::memory_order_relaxed);
  }
  WaitDrained();
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  for (const auto& shard : shards_) shard->AccumulateStats(&stats_);
  stats_.peak_live_objects = peak_live_.load(std::memory_order_relaxed);
  closed_ = true;
}

const StreamEngineStats& StreamEngine::stats() const {
  OPERB_CHECK_MSG(closed_, "stats() before Close()");
  return stats_;
}

void StreamEngine::WorkerLoop(std::size_t worker_index) {
  std::vector<Update> batch(kConsumerBatch);
  int idle_spins = 0;
  for (;;) {
    bool did_work = false;
    for (std::size_t s = worker_index; s < shards_.size();
         s += options_.num_threads) {
      Shard& shard = *shards_[s];
      for (int rounds = 0; rounds < kMaxBatchesPerShard; ++rounds) {
        const std::size_t n = shard.ring.Pop(batch.data(), batch.size());
        if (n == 0) break;
        shard.ProcessBatch(batch.data(), n);
        shard.processed.fetch_add(n, std::memory_order_release);
        did_work = true;
        if (n < batch.size()) break;
      }
    }
    if (did_work) {
      idle_spins = 0;
      continue;
    }
    // Close() drains every ring before setting stop_, so an idle worker
    // seeing the flag has nothing left to process.
    if (stop_.load(std::memory_order_acquire)) break;
    if (++idle_spins <= kIdleSpinsBeforeSleep) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(kIdleSleep);
    }
  }
}

}  // namespace operb::engine
