#ifndef OPERB_ENGINE_SPSC_RING_H_
#define OPERB_ENGINE_SPSC_RING_H_

/// \file
/// Bounded lock-free single-producer/single-consumer ring, the
/// shard hand-off queue of the StreamEngine.

#include <atomic>
#include <cstddef>
#include <vector>

namespace operb::engine {

/// Bounded lock-free single-producer / single-consumer ring.
///
/// This is the shard hand-off queue of the StreamEngine: the (single)
/// producer thread batches updates in, the shard's owning worker thread
/// batches them out. The classic two-index design — the producer owns
/// `tail_`, the consumer owns `head_`, each side caches the other's index
/// and refreshes it only when the cached value no longer proves progress —
/// keeps the hot path at one relaxed load + one release store per batch,
/// with no contended cache line ping-pong while the ring is neither full
/// nor empty.
///
/// Capacity is rounded up to a power of two so index wrapping is a mask.
/// Indices are monotonically increasing (wrap-around of std::size_t is
/// harmless modulo arithmetic).
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap *= 2;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Copies up to `n` items into the ring; returns how many were
  /// accepted (possibly 0 when full — the producer's backpressure
  /// signal). Producer thread only.
  std::size_t TryPush(const T* items, std::size_t n) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = capacity() - (tail - cached_head_);
    if (free < n) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = capacity() - (tail - cached_head_);
    }
    const std::size_t take = n < free ? n : free;
    for (std::size_t i = 0; i < take; ++i) {
      slots_[(tail + i) & mask_] = items[i];
    }
    tail_.store(tail + take, std::memory_order_release);
    return take;
  }

  /// Moves up to `max` items out of the ring into `out`; returns how many
  /// were popped. Consumer thread only.
  std::size_t Pop(T* out, std::size_t max) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = cached_tail_ - head;
    if (avail == 0) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = cached_tail_ - head;
      if (avail == 0) return 0;
    }
    const std::size_t take = max < avail ? max : avail;
    for (std::size_t i = 0; i < take; ++i) {
      out[i] = slots_[(head + i) & mask_];
    }
    head_.store(head + take, std::memory_order_release);
    return take;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Producer-owned index + its cache of the consumer's, then the mirror
  // pair, each on its own cache line to avoid false sharing.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t cached_head_ = 0;  // producer-local
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t cached_tail_ = 0;  // consumer-local
};

}  // namespace operb::engine

#endif  // OPERB_ENGINE_SPSC_RING_H_
