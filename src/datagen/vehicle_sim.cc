#include "datagen/vehicle_sim.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "datagen/noise.h"

namespace operb::datagen {

namespace {

/// Tracks a position moving along a waypoint polyline.
class PolylineCursor {
 public:
  explicit PolylineCursor(const std::vector<geo::Vec2>& waypoints)
      : waypoints_(waypoints) {}

  bool Done() const { return leg_ + 1 >= waypoints_.size(); }

  /// Advances by `distance` meters along the polyline.
  void Advance(double distance) {
    while (distance > 0.0 && !Done()) {
      const geo::Vec2 a = waypoints_[leg_];
      const geo::Vec2 b = waypoints_[leg_ + 1];
      const double leg_len = geo::Distance(a, b);
      const double remaining = leg_len - along_;
      if (distance < remaining) {
        along_ += distance;
        return;
      }
      distance -= remaining;
      ++leg_;
      along_ = 0.0;
    }
  }

  geo::Vec2 Position() const {
    if (Done()) return waypoints_.back();
    const geo::Vec2 a = waypoints_[leg_];
    const geo::Vec2 b = waypoints_[leg_ + 1];
    const double leg_len = geo::Distance(a, b);
    if (leg_len == 0.0) return a;
    return a + (b - a) * (along_ / leg_len);
  }

  /// Distance to the nearest endpoint of the current leg (proximity to an
  /// intersection).
  double DistanceToWaypoint() const {
    if (Done()) return 0.0;
    const double leg_len =
        geo::Distance(waypoints_[leg_], waypoints_[leg_ + 1]);
    return std::min(along_, leg_len - along_);
  }

 private:
  const std::vector<geo::Vec2>& waypoints_;
  std::size_t leg_ = 0;
  double along_ = 0.0;
};

}  // namespace

traj::Trajectory SimulateVehicle(const std::vector<geo::Vec2>& waypoints,
                                 const VehicleSimParams& params, Rng* rng) {
  OPERB_CHECK(params.cruise_speed_mps > 0.0);
  OPERB_CHECK(params.sampling_interval_s > 0.0);
  traj::Trajectory out;
  if (waypoints.size() < 2) return out;

  PolylineCursor cursor(waypoints);
  double t = params.start_time_s;
  double last_emitted_t = -1.0;
  // Smoothly varying speed factor (AR(1) around 1.0).
  double speed_factor = 1.0;
  GaussMarkovNoise gps_error(params.gps_noise_m,
                             params.gps_noise_correlation_s);

  while (!cursor.Done()) {
    // Sensor tick: possibly jittered interval.
    double dt = params.sampling_interval_s;
    if (params.sampling_jitter_fraction > 0.0) {
      dt *= 1.0 + rng->Uniform(-params.sampling_jitter_fraction,
                               params.sampling_jitter_fraction);
    }
    // Kinematics between ticks: evolve the speed factor and slow near
    // intersections.
    speed_factor = 0.8 * speed_factor +
                   0.2 * (1.0 + params.speed_jitter_fraction * rng->Normal());
    speed_factor = std::clamp(speed_factor, 0.2, 1.8);
    double speed = params.cruise_speed_mps * speed_factor;
    if (cursor.DistanceToWaypoint() < params.slowdown_radius_m) {
      speed *= params.turn_slowdown_fraction +
               (1.0 - params.turn_slowdown_fraction) *
                   (cursor.DistanceToWaypoint() / params.slowdown_radius_m);
    }
    cursor.Advance(speed * dt);
    t += dt;
    // The error process advances even for dropped samples (time passes).
    const geo::Vec2 error = gps_error.Sample(dt, rng);

    if (params.dropout_probability > 0.0 &&
        rng->Bernoulli(params.dropout_probability)) {
      continue;  // lost sample
    }
    geo::Vec2 pos = cursor.Position() + error;
    // Guard the strictly-increasing-time invariant against degenerate
    // jitter draws.
    if (t <= last_emitted_t) t = last_emitted_t + 1e-3;
    out.AppendUnchecked({pos.x, pos.y, t});
    last_emitted_t = t;
  }
  return out;
}

}  // namespace operb::datagen
