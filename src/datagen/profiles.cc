#include "datagen/profiles.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "datagen/free_walker.h"
#include "datagen/road_network.h"
#include "datagen/vehicle_sim.h"

namespace operb::datagen {

std::vector<DatasetKind> AllDatasetKinds() {
  return {DatasetKind::kTaxi, DatasetKind::kTruck, DatasetKind::kSerCar,
          DatasetKind::kGeoLife};
}

std::string_view DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kTaxi:
      return "Taxi";
    case DatasetKind::kTruck:
      return "Truck";
    case DatasetKind::kSerCar:
      return "SerCar";
    case DatasetKind::kGeoLife:
      return "GeoLife";
  }
  return "unknown";
}

DatasetProfile DatasetProfile::For(DatasetKind kind) {
  DatasetProfile p;
  p.kind = kind;
  switch (kind) {
    case DatasetKind::kTaxi:
      // Beijing taxis: urban grid, one point per minute.
      p.road_network = true;
      p.block_meters = 400.0;
      p.cruise_speed_mps = 11.0;
      p.sampling_min_s = 60.0;
      p.sampling_max_s = 60.0;
      p.gps_noise_m = 4.0;
      p.dropout_probability = 0.02;
      break;
    case DatasetKind::kTruck:
      // Inter-city trucks: long straight arterials, mixed sampling rates.
      p.road_network = true;
      p.block_meters = 2500.0;
      p.cruise_speed_mps = 18.0;
      p.sampling_min_s = 1.0;
      p.sampling_max_s = 60.0;
      p.gps_noise_m = 4.0;
      p.dropout_probability = 0.02;
      break;
    case DatasetKind::kSerCar:
      // Rental cars: urban grid, 3-5 s sampling.
      p.road_network = true;
      p.block_meters = 450.0;
      p.cruise_speed_mps = 12.0;
      p.sampling_min_s = 3.0;
      p.sampling_max_s = 5.0;
      p.gps_noise_m = 3.0;
      p.dropout_probability = 0.02;
      break;
    case DatasetKind::kGeoLife:
      // Pedestrians/cyclists in free space, 1-5 s sampling.
      p.road_network = false;
      p.cruise_speed_mps = 2.5;
      p.sampling_min_s = 1.0;
      p.sampling_max_s = 5.0;
      p.gps_noise_m = 4.0;
      p.dropout_probability = 0.01;
      break;
  }
  return p;
}

traj::Trajectory GenerateTrajectory(const DatasetProfile& profile,
                                    std::size_t num_points, Rng* rng) {
  OPERB_CHECK(num_points >= 2);
  const double interval =
      rng->Uniform(profile.sampling_min_s,
                   std::nextafter(profile.sampling_max_s, 1e308));

  if (!profile.road_network) {
    FreeWalkerParams params;
    params.speed_mps = profile.cruise_speed_mps * rng->Uniform(0.7, 1.4);
    params.sampling_interval_s = interval;
    params.gps_noise_m = profile.gps_noise_m;
    params.dropout_probability = profile.dropout_probability;
    return SimulateFreeWalk(num_points, params, rng);
  }

  RoadNetwork::Params net_params;
  net_params.block_meters = profile.block_meters;
  const RoadNetwork network = RoadNetwork::Build(net_params, rng);

  VehicleSimParams sim;
  sim.cruise_speed_mps = profile.cruise_speed_mps;
  sim.sampling_interval_s = interval;
  sim.gps_noise_m = profile.gps_noise_m;
  sim.dropout_probability = profile.dropout_probability;
  sim.slowdown_radius_m = std::min(60.0, profile.block_meters / 6.0);

  // Size the walk so the drive produces at least num_points samples:
  // points-per-hop ~= block / (speed * interval). Regenerate with more
  // hops if dropouts or slowdowns left the trajectory short.
  const double points_per_hop =
      profile.block_meters / (profile.cruise_speed_mps * interval);
  std::size_t hops = static_cast<std::size_t>(
      std::ceil(static_cast<double>(num_points) / std::max(0.05, points_per_hop) *
                1.3)) + 2;
  traj::Trajectory t;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const auto walk = network.RandomWalk(hops, rng);
    t = SimulateVehicle(network.WalkToWaypoints(walk), sim, rng);
    if (t.size() >= num_points) break;
    hops = hops * 2 + 4;
  }
  OPERB_CHECK_MSG(t.size() >= num_points,
                  "vehicle simulation failed to reach the point target");
  t.mutable_points().resize(num_points);
  return t;
}

std::vector<traj::Trajectory> GenerateDataset(const DatasetSpec& spec) {
  Rng root(spec.seed ^ (static_cast<std::uint64_t>(spec.kind) << 32));
  const DatasetProfile profile = DatasetProfile::For(spec.kind);
  std::vector<traj::Trajectory> out;
  out.reserve(spec.num_trajectories);
  for (std::size_t i = 0; i < spec.num_trajectories; ++i) {
    Rng child = root.Fork();
    out.push_back(
        GenerateTrajectory(profile, spec.points_per_trajectory, &child));
  }
  return out;
}

}  // namespace operb::datagen
