#ifndef OPERB_DATAGEN_VEHICLE_SIM_H_
#define OPERB_DATAGEN_VEHICLE_SIM_H_

#include <vector>

#include "datagen/rng.h"
#include "geo/point.h"
#include "traj/trajectory.h"

namespace operb::datagen {

/// Kinematic + sensor model turning a waypoint polyline into a sampled
/// GPS trajectory.
///
/// The vehicle moves along the polyline with a speed that fluctuates
/// around `cruise_speed_mps` and drops near waypoints (intersections),
/// and the GPS sensor samples its position every `sampling_interval_s`
/// (with optional jitter and dropouts) adding isotropic Gaussian noise.
struct VehicleSimParams {
  double cruise_speed_mps = 11.0;   ///< ~40 km/h urban
  double speed_jitter_fraction = 0.25;
  /// Fraction of cruise speed when passing a waypoint (slow turns).
  double turn_slowdown_fraction = 0.45;
  /// Distance from a waypoint within which the slowdown applies.
  double slowdown_radius_m = 60.0;

  double sampling_interval_s = 5.0;
  /// Uniform +/- jitter applied to each sampling interval (fraction).
  double sampling_jitter_fraction = 0.1;
  /// Probability that a scheduled sample is lost (models the unsampled
  /// sudden track changes OPERB-A's interpolation compensates for).
  double dropout_probability = 0.02;

  /// Stationary GPS noise sigma in meters (Gauss-Markov process; see
  /// datagen/noise.h).
  double gps_noise_m = 3.0;
  /// Correlation time of the GPS error drift in seconds. <= 0 degrades
  /// to white noise.
  double gps_noise_correlation_s = 90.0;

  /// Timestamp of the first sample.
  double start_time_s = 0.0;
};

/// Simulates the drive and returns the sampled trajectory. The number of
/// produced points depends on path length, speed and sampling interval;
/// callers size the waypoint walk to hit a target point count.
traj::Trajectory SimulateVehicle(const std::vector<geo::Vec2>& waypoints,
                                 const VehicleSimParams& params, Rng* rng);

}  // namespace operb::datagen

#endif  // OPERB_DATAGEN_VEHICLE_SIM_H_
