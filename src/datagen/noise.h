#ifndef OPERB_DATAGEN_NOISE_H_
#define OPERB_DATAGEN_NOISE_H_

#include <cmath>

#include "datagen/rng.h"
#include "geo/point.h"

namespace operb::datagen {

/// First-order Gauss-Markov (AR(1)) GPS error model.
///
/// GPS positioning error is dominated by slowly varying components
/// (atmospheric delay, multipath, ephemeris error), so consecutive fixes
/// share most of their error — the error *drifts* with a correlation time
/// of the order of a minute rather than being white. Modeling it as an
/// Ornstein-Uhlenbeck process per axis,
///
///   e_{k+1} = rho * e_k + sqrt(1 - rho^2) * sigma * N(0,1),
///   rho = exp(-dt / correlation_time),
///
/// keeps the stationary std-dev at `sigma` for every sampling rate while
/// making densely sampled fixes nearly share their error — which is what
/// lets dense trajectories compress far below the noise floor (and what a
/// white-noise model gets wrong).
class GaussMarkovNoise {
 public:
  GaussMarkovNoise(double sigma_m, double correlation_time_s)
      : sigma_(sigma_m), tau_(correlation_time_s) {}

  /// Advances the error process by `dt` seconds and returns the offset.
  geo::Vec2 Sample(double dt, Rng* rng) {
    if (sigma_ <= 0.0) return {0.0, 0.0};
    const double rho = (tau_ > 0.0) ? std::exp(-dt / tau_) : 0.0;
    const double diffusion = sigma_ * std::sqrt(1.0 - rho * rho);
    state_.x = rho * state_.x + diffusion * rng->Normal();
    state_.y = rho * state_.y + diffusion * rng->Normal();
    return state_;
  }

 private:
  double sigma_;
  double tau_;
  geo::Vec2 state_{0.0, 0.0};
};

}  // namespace operb::datagen

#endif  // OPERB_DATAGEN_NOISE_H_
