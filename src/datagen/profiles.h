#ifndef OPERB_DATAGEN_PROFILES_H_
#define OPERB_DATAGEN_PROFILES_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "datagen/rng.h"
#include "traj/trajectory.h"

namespace operb::datagen {

/// The four dataset profiles of the paper's Table 1, reproduced
/// synthetically (see DESIGN.md §3 for the substitution argument).
///
///   Taxi    — urban road network, 60 s sampling (sparsest)
///   Truck   — inter-city arterials, mixed 1–60 s sampling, long blocks
///   SerCar  — urban road network, 3–5 s sampling (dense vehicle data)
///   GeoLife — free-space walking/cycling, 1–5 s sampling (densest)
enum class DatasetKind { kTaxi, kTruck, kSerCar, kGeoLife };

std::vector<DatasetKind> AllDatasetKinds();
std::string_view DatasetName(DatasetKind kind);

/// Shape parameters of one profile (exposed so tests/benches can assert
/// against them and ablations can perturb them).
struct DatasetProfile {
  DatasetKind kind = DatasetKind::kTaxi;
  bool road_network = true;       ///< vehicle-on-grid vs free walker
  double block_meters = 400.0;    ///< grid block size (road kinds)
  double cruise_speed_mps = 11.0;
  double sampling_min_s = 60.0;   ///< per-trajectory interval drawn
  double sampling_max_s = 60.0;   ///< uniformly from [min, max]
  double gps_noise_m = 3.0;
  double dropout_probability = 0.02;

  static DatasetProfile For(DatasetKind kind);
};

/// How much data to generate.
struct DatasetSpec {
  DatasetKind kind = DatasetKind::kTaxi;
  std::size_t num_trajectories = 10;
  std::size_t points_per_trajectory = 10000;
  std::uint64_t seed = 42;
};

/// Generates one trajectory with exactly `num_points` samples.
traj::Trajectory GenerateTrajectory(const DatasetProfile& profile,
                                    std::size_t num_points, Rng* rng);

/// Generates a whole dataset (deterministic in spec.seed).
std::vector<traj::Trajectory> GenerateDataset(const DatasetSpec& spec);

}  // namespace operb::datagen

#endif  // OPERB_DATAGEN_PROFILES_H_
