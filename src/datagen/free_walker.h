#ifndef OPERB_DATAGEN_FREE_WALKER_H_
#define OPERB_DATAGEN_FREE_WALKER_H_

#include "datagen/rng.h"
#include "traj/trajectory.h"

namespace operb::datagen {

/// Free-space smooth random movement (no road network).
///
/// Models GeoLife-style pedestrian/bicycle traces: the heading follows an
/// Ornstein-Uhlenbeck process (smooth curvature, occasional meanders)
/// instead of the sharp grid turns of the vehicle model. "Suitable for
/// freely moving objects" is exactly the regime the paper cites LS
/// methods for.
struct FreeWalkerParams {
  double speed_mps = 2.5;             ///< walking/cycling pace
  double speed_jitter_fraction = 0.3;
  /// Mean-reversion rate of the heading process (1/s). Larger values
  /// straighten the path.
  double heading_reversion = 0.1;
  /// Heading diffusion (rad / sqrt(s)). The stationary curvature std-dev
  /// is volatility / sqrt(2 * reversion) ~ 0.13 rad/s: gentle meanders,
  /// rare sharp turns — pedestrian/bicycle movement.
  double heading_volatility = 0.06;

  double sampling_interval_s = 3.0;
  double sampling_jitter_fraction = 0.1;
  double dropout_probability = 0.01;
  /// Stationary GPS noise sigma (Gauss-Markov; see datagen/noise.h).
  double gps_noise_m = 4.0;
  double gps_noise_correlation_s = 90.0;
  double start_time_s = 0.0;
};

/// Generates `num_points` samples starting at the origin.
traj::Trajectory SimulateFreeWalk(std::size_t num_points,
                                  const FreeWalkerParams& params, Rng* rng);

}  // namespace operb::datagen

#endif  // OPERB_DATAGEN_FREE_WALKER_H_
