#ifndef OPERB_DATAGEN_ROAD_NETWORK_H_
#define OPERB_DATAGEN_ROAD_NETWORK_H_

#include <cstddef>
#include <vector>

#include "datagen/rng.h"
#include "geo/point.h"

namespace operb::datagen {

/// A synthetic urban road network: a jittered grid of intersections with
/// 4-neighbour connectivity.
///
/// The paper's Taxi/SerCar trajectories are "vehicles running on an urban
/// road network" whose crossroads cause the sudden direction changes that
/// motivate OPERB-A's patch points (Figure 9). A jittered grid reproduces
/// exactly that structure: long near-straight stretches punctuated by
/// sharp turns at intersections.
class RoadNetwork {
 public:
  struct Params {
    std::size_t rows = 24;
    std::size_t cols = 24;
    /// Block edge length in meters (Beijing-ish city blocks ~400 m).
    double block_meters = 400.0;
    /// Random displacement of each intersection, as a fraction of the
    /// block length (bends the grid so streets are not axis-aligned).
    double jitter_fraction = 0.18;
  };

  /// Builds a deterministic network from `rng`.
  static RoadNetwork Build(const Params& params, Rng* rng);

  std::size_t node_count() const { return nodes_.size(); }
  geo::Vec2 node(std::size_t id) const { return nodes_[id]; }
  const std::vector<std::size_t>& neighbors(std::size_t id) const {
    return adjacency_[id];
  }

  /// A random walk of `num_hops` edges starting from a random node,
  /// avoiding immediate backtracking where possible (vehicles rarely
  /// U-turn at every corner). Returns the node id sequence.
  std::vector<std::size_t> RandomWalk(std::size_t num_hops, Rng* rng) const;

  /// The walk as a waypoint polyline in meters.
  std::vector<geo::Vec2> WalkToWaypoints(
      const std::vector<std::size_t>& walk) const;

 private:
  std::vector<geo::Vec2> nodes_;
  std::vector<std::vector<std::size_t>> adjacency_;
};

}  // namespace operb::datagen

#endif  // OPERB_DATAGEN_ROAD_NETWORK_H_
