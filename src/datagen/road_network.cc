#include "datagen/road_network.h"

#include "common/check.h"

namespace operb::datagen {

RoadNetwork RoadNetwork::Build(const Params& params, Rng* rng) {
  OPERB_CHECK(params.rows >= 2 && params.cols >= 2);
  RoadNetwork net;
  const std::size_t n = params.rows * params.cols;
  net.nodes_.reserve(n);
  net.adjacency_.assign(n, {});
  const double jitter = params.jitter_fraction * params.block_meters;
  for (std::size_t r = 0; r < params.rows; ++r) {
    for (std::size_t c = 0; c < params.cols; ++c) {
      const double x = static_cast<double>(c) * params.block_meters +
                       rng->Uniform(-jitter, jitter);
      const double y = static_cast<double>(r) * params.block_meters +
                       rng->Uniform(-jitter, jitter);
      net.nodes_.push_back({x, y});
    }
  }
  auto id = [&](std::size_t r, std::size_t c) {
    return r * params.cols + c;
  };
  for (std::size_t r = 0; r < params.rows; ++r) {
    for (std::size_t c = 0; c < params.cols; ++c) {
      if (c + 1 < params.cols) {
        net.adjacency_[id(r, c)].push_back(id(r, c + 1));
        net.adjacency_[id(r, c + 1)].push_back(id(r, c));
      }
      if (r + 1 < params.rows) {
        net.adjacency_[id(r, c)].push_back(id(r + 1, c));
        net.adjacency_[id(r + 1, c)].push_back(id(r, c));
      }
    }
  }
  return net;
}

std::vector<std::size_t> RoadNetwork::RandomWalk(std::size_t num_hops,
                                                 Rng* rng) const {
  OPERB_CHECK(!nodes_.empty());
  std::vector<std::size_t> walk;
  walk.reserve(num_hops + 1);
  std::size_t current = rng->NextBelow(nodes_.size());
  std::size_t previous = current;
  walk.push_back(current);
  for (std::size_t hop = 0; hop < num_hops; ++hop) {
    const std::vector<std::size_t>& nbrs = adjacency_[current];
    OPERB_CHECK(!nbrs.empty());
    std::size_t next = nbrs[rng->NextBelow(nbrs.size())];
    // Re-draw once or twice to avoid an immediate U-turn when the node has
    // an alternative; occasional U-turns are fine (and realistic).
    for (int attempt = 0; attempt < 2 && next == previous && nbrs.size() > 1;
         ++attempt) {
      next = nbrs[rng->NextBelow(nbrs.size())];
    }
    previous = current;
    current = next;
    walk.push_back(current);
  }
  return walk;
}

std::vector<geo::Vec2> RoadNetwork::WalkToWaypoints(
    const std::vector<std::size_t>& walk) const {
  std::vector<geo::Vec2> out;
  out.reserve(walk.size());
  for (std::size_t id : walk) out.push_back(nodes_[id]);
  return out;
}

}  // namespace operb::datagen
