#include "datagen/free_walker.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "datagen/noise.h"
#include "geo/angle.h"

namespace operb::datagen {

traj::Trajectory SimulateFreeWalk(std::size_t num_points,
                                  const FreeWalkerParams& params, Rng* rng) {
  OPERB_CHECK(params.sampling_interval_s > 0.0);
  traj::Trajectory out;
  out.reserve(num_points);

  geo::Vec2 pos{0.0, 0.0};
  double heading = rng->Uniform(0.0, geo::kTwoPi);
  // The OU process reverts the heading *drift* to zero, so the walker
  // tends to keep its current direction while wandering.
  double heading_drift = 0.0;
  double t = params.start_time_s;
  double last_emitted_t = -1.0;
  GaussMarkovNoise gps_error(params.gps_noise_m,
                             params.gps_noise_correlation_s);

  while (out.size() < num_points) {
    double dt = params.sampling_interval_s;
    if (params.sampling_jitter_fraction > 0.0) {
      dt *= 1.0 + rng->Uniform(-params.sampling_jitter_fraction,
                               params.sampling_jitter_fraction);
    }
    heading_drift += -params.heading_reversion * heading_drift * dt +
                     params.heading_volatility * std::sqrt(dt) * rng->Normal();
    heading_drift = std::clamp(heading_drift, -0.3, 0.3);
    heading += heading_drift * dt;

    double speed = params.speed_mps *
                   (1.0 + params.speed_jitter_fraction * rng->Normal());
    speed = std::max(0.1, speed);
    pos += geo::Vec2::FromAngle(heading) * (speed * dt);
    t += dt;
    const geo::Vec2 error = gps_error.Sample(dt, rng);

    if (params.dropout_probability > 0.0 &&
        rng->Bernoulli(params.dropout_probability)) {
      continue;
    }
    const geo::Vec2 sample = pos + error;
    if (t <= last_emitted_t) t = last_emitted_t + 1e-3;
    out.AppendUnchecked({sample.x, sample.y, t});
    last_emitted_t = t;
  }
  return out;
}

}  // namespace operb::datagen
