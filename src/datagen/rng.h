#ifndef OPERB_DATAGEN_RNG_H_
#define OPERB_DATAGEN_RNG_H_

#include <cmath>
#include <cstdint>

#include "geo/angle.h"

namespace operb::datagen {

/// Deterministic, platform-independent PRNG (SplitMix64) with the handful
/// of distributions the generators need.
///
/// The standard library's distribution objects are implementation-defined,
/// so using them would make "same seed, same dataset" only true per
/// libstdc++ version. Everything here is pinned down bit-for-bit, which
/// the reproducibility tests rely on.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t NextU64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t NextBelow(std::uint64_t n) { return NextU64() % n; }

  /// True with probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller (pair-cached).
  double Normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double a = geo::kTwoPi * u2;
    cached_ = r * std::sin(a);
    has_cached_ = true;
    return r * std::cos(a);
  }

  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Derives an independent child stream (for per-trajectory seeding).
  Rng Fork() { return Rng(NextU64() ^ 0xD1B54A32D192ED03ULL); }

 private:
  std::uint64_t state_;
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace operb::datagen

#endif  // OPERB_DATAGEN_RNG_H_
