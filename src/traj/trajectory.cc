#include "traj/trajectory.h"

#include <cstdio>

namespace operb::traj {

Status Trajectory::Append(const geo::Point& p) {
  if (!points_.empty() && p.t <= points_.back().t) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "non-monotonic timestamp %.3f after %.3f at index %zu", p.t,
                  points_.back().t, points_.size());
    return Status::InvalidArgument(buf);
  }
  points_.push_back(p);
  return Status::OK();
}

Status Trajectory::Validate() const {
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].t <= points_[i - 1].t) {
      char buf[128];
      std::snprintf(buf, sizeof(buf),
                    "non-monotonic timestamp at index %zu (%.3f <= %.3f)", i,
                    points_[i].t, points_[i - 1].t);
      return Status::InvalidArgument(buf);
    }
  }
  return Status::OK();
}

double Trajectory::PathLength() const {
  double total = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    total += geo::Distance(points_[i].pos(), points_[i - 1].pos());
  }
  return total;
}

double Trajectory::Duration() const {
  if (points_.size() < 2) return 0.0;
  return points_.back().t - points_.front().t;
}

double Trajectory::MeanSamplingIntervalSeconds() const {
  if (points_.size() < 2) return 0.0;
  return Duration() / static_cast<double>(points_.size() - 1);
}

std::string Trajectory::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "Trajectory{%zu points, %.1f m, %.1f s, mean dt %.2f s}",
                points_.size(), PathLength(), Duration(),
                MeanSamplingIntervalSeconds());
  return buf;
}

}  // namespace operb::traj
