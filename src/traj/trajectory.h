#ifndef OPERB_TRAJ_TRAJECTORY_H_
#define OPERB_TRAJ_TRAJECTORY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "geo/point.h"

namespace operb::traj {

/// A trajectory: a sequence of samples with strictly increasing
/// timestamps (the paper's T[P0, ..., Pn]).
///
/// The container is a thin wrapper over std::vector<geo::Point> that adds
/// the monotonic-time invariant (checked by Validate(), enforced by
/// Append()) and a few summary statistics. Raw sensor streams that may
/// violate the invariant (duplicates, out-of-order points) should pass
/// through traj::StreamCleaner first.
class Trajectory {
 public:
  Trajectory() = default;
  explicit Trajectory(std::vector<geo::Point> points)
      : points_(std::move(points)) {}

  Trajectory(const Trajectory&) = default;
  Trajectory& operator=(const Trajectory&) = default;
  Trajectory(Trajectory&&) noexcept = default;
  Trajectory& operator=(Trajectory&&) noexcept = default;

  /// Appends a sample; returns InvalidArgument if its timestamp does not
  /// strictly exceed the last one.
  Status Append(const geo::Point& p);

  /// Appends without the invariant check (for trusted generators that
  /// produce monotone time by construction).
  void AppendUnchecked(const geo::Point& p) { points_.push_back(p); }

  /// Verifies strictly increasing timestamps over the whole sequence.
  Status Validate() const;

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  void clear() { points_.clear(); }
  void reserve(std::size_t n) { points_.reserve(n); }

  const geo::Point& operator[](std::size_t i) const { return points_[i]; }
  const geo::Point& front() const { return points_.front(); }
  const geo::Point& back() const { return points_.back(); }

  const std::vector<geo::Point>& points() const { return points_; }
  std::vector<geo::Point>& mutable_points() { return points_; }

  auto begin() const { return points_.begin(); }
  auto end() const { return points_.end(); }

  /// Total path length in meters (sum of consecutive hop distances).
  double PathLength() const;

  /// Time span covered, in seconds (0 for fewer than 2 points).
  double Duration() const;

  /// Mean seconds between consecutive samples (0 for fewer than 2 points).
  double MeanSamplingIntervalSeconds() const;

  std::string ToString() const;

 private:
  std::vector<geo::Point> points_;
};

}  // namespace operb::traj

#endif  // OPERB_TRAJ_TRAJECTORY_H_
