#include "traj/cleaner.h"

#include <cmath>

namespace operb::traj {

std::optional<geo::Point> StreamCleaner::Push(const geo::Point& p) {
  if (!last_.has_value()) {
    last_ = p;
    ++stats_.accepted;
    return p;
  }
  const geo::Point& prev = *last_;
  const double dt = p.t - prev.t;
  if (std::fabs(dt) <= options_.duplicate_time_epsilon &&
      geo::Distance(p.pos(), prev.pos()) <=
          options_.duplicate_distance_epsilon) {
    ++stats_.duplicates_dropped;
    return std::nullopt;
  }
  if (dt <= 0.0) {
    ++stats_.out_of_order_dropped;
    return std::nullopt;
  }
  if (options_.max_speed_mps > 0.0) {
    const double speed = geo::Distance(p.pos(), prev.pos()) / dt;
    if (speed > options_.max_speed_mps) {
      ++stats_.outliers_dropped;
      return std::nullopt;
    }
  }
  last_ = p;
  ++stats_.accepted;
  return p;
}

Trajectory StreamCleaner::CleanAll(const std::vector<geo::Point>& raw) {
  Trajectory out;
  out.reserve(raw.size());
  for (const geo::Point& p : raw) {
    if (auto kept = Push(p)) out.AppendUnchecked(*kept);
  }
  return out;
}

}  // namespace operb::traj
