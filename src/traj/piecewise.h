#ifndef OPERB_TRAJ_PIECEWISE_H_
#define OPERB_TRAJ_PIECEWISE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "geo/point.h"
#include "geo/segment.h"
#include "traj/trajectory.h"

namespace operb::traj {

/// One directed line segment of a piecewise-line representation, together
/// with the index range of original trajectory points it represents.
///
/// `start`/`end` usually coincide with trajectory points, but OPERB-A may
/// substitute interpolated *patch points*, so positions are stored
/// explicitly rather than as indices. `first_index`..`last_index`
/// (inclusive) are the represented original points; shared boundary
/// points belong to both neighboring segments, matching how the paper
/// counts points per segment in Figure 17.
struct RepresentedSegment {
  geo::Vec2 start;
  geo::Vec2 end;
  std::size_t first_index = 0;
  std::size_t last_index = 0;
  /// True when `start` (resp. `end`) is not the position of the point at
  /// `first_index` (resp. `last_index`): an interpolated patch point
  /// (OPERB-A), or a boundary detached from its index by the absorb
  /// optimization (OPERB optimization 5, which extends a segment's covered
  /// range past its geometric endpoint).
  bool start_is_patch = false;
  bool end_is_patch = false;

  geo::DirectedSegment AsSegment() const { return {start, end}; }

  /// Number of original data points this segment represents (inclusive
  /// endpoints, so adjacent segments double-count the shared point — the
  /// convention Figure 17 uses).
  std::size_t PointCount() const { return last_index - first_index + 1; }

  std::string ToString() const;
};

/// Appends the byte-stable encoding of `s` (4 doubles, 2 u64 indices,
/// 2 patch-flag bytes — 50 bytes, little-endian, doubles as IEEE-754 bit
/// patterns). Building block of the simplifier state blobs the engine
/// checkpoints; see common/serial.h for the encoding discipline.
void SerializeSegment(const RepresentedSegment& s,
                      std::vector<std::uint8_t>* out);

/// Inverse of SerializeSegment, advancing `*pos`. Corruption on
/// truncation or a patch-flag byte that is not 0/1.
Status DeserializeSegment(std::span<const std::uint8_t> in, std::size_t* pos,
                          RepresentedSegment* s);

/// Consumer callback for streaming segment emission: the zero-allocation
/// output path of the one-pass simplifiers. A stream with a sink installed
/// hands each segment to the callback the moment it is determined instead
/// of buffering it, so steady-state compression performs no heap
/// allocation per point (see DESIGN.md "Performance").
using SegmentSink = std::function<void(const RepresentedSegment&)>;

/// A piecewise-line representation T[L0, ..., Lm] of a trajectory:
/// continuous directed segments whose first start is P0 and last end is Pn
/// (or patch points on the corresponding lines, for OPERB-A).
class PiecewiseRepresentation {
 public:
  PiecewiseRepresentation() = default;

  void Append(RepresentedSegment seg) { segments_.push_back(seg); }

  std::size_t size() const { return segments_.size(); }
  bool empty() const { return segments_.empty(); }

  const RepresentedSegment& operator[](std::size_t i) const {
    return segments_[i];
  }
  const std::vector<RepresentedSegment>& segments() const { return segments_; }

  auto begin() const { return segments_.begin(); }
  auto end() const { return segments_.end(); }

  /// Number of points a consumer must store: one per segment plus the
  /// final endpoint. This is the paper's |T| used in compression ratios.
  std::size_t StoredPointCount() const {
    return segments_.empty() ? 0 : segments_.size() + 1;
  }

  /// Checks the representation is continuous (each segment starts where
  /// the previous one ended, index ranges chain and cover [0, n]) against
  /// the original trajectory.
  Status ValidateAgainst(const Trajectory& original) const;

  std::string ToString() const;

 private:
  std::vector<RepresentedSegment> segments_;
};

}  // namespace operb::traj

#endif  // OPERB_TRAJ_PIECEWISE_H_
