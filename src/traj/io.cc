#include "traj/io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace operb::traj {

namespace {

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IOError("read failure on " + path);
  return ss.str();
}

bool IsBlankOrComment(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

Status WriteCsv(const Trajectory& trajectory, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# x_meters,y_meters,t_seconds\n";
  char buf[128];
  for (const geo::Point& p : trajectory) {
    std::snprintf(buf, sizeof(buf), "%.9g,%.9g,%.9g\n", p.x, p.y, p.t);
    out << buf;
  }
  out.flush();
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

Result<Trajectory> ParseCsv(const std::string& content) {
  Trajectory out;
  std::istringstream in(content);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (IsBlankOrComment(line)) continue;
    double x = 0.0, y = 0.0, t = 0.0;
    if (std::sscanf(line.c_str(), "%lf,%lf,%lf", &x, &y, &t) != 3) {
      return Status::Corruption("malformed CSV row at line " +
                                std::to_string(lineno));
    }
    Status st = out.Append({x, y, t});
    if (!st.ok()) {
      return Status::Corruption("line " + std::to_string(lineno) + ": " +
                                st.message());
    }
  }
  return out;
}

Result<Trajectory> ReadCsv(const std::string& path) {
  OPERB_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  return ParseCsv(content);
}

Result<Trajectory> ReadGeoLifePlt(const std::string& path,
                                  const PltReadOptions& options) {
  OPERB_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  std::istringstream in(content);
  std::string line;
  // PLT files carry six header lines before the data rows.
  for (int i = 0; i < 6; ++i) {
    if (!std::getline(in, line)) {
      return Status::Corruption("PLT file " + path + " truncated in header");
    }
  }
  Trajectory out;
  bool have_projector = options.use_fixed_reference;
  geo::LocalProjector projector(options.reference);
  double t0 = 0.0;
  bool have_t0 = false;
  std::size_t lineno = 6;
  while (std::getline(in, line)) {
    ++lineno;
    if (IsBlankOrComment(line)) continue;
    double lat = 0.0, lon = 0.0, zero = 0.0, alt = 0.0, days = 0.0;
    if (std::sscanf(line.c_str(), "%lf,%lf,%lf,%lf,%lf", &lat, &lon, &zero,
                    &alt, &days) != 5) {
      return Status::Corruption("malformed PLT row at line " +
                                std::to_string(lineno));
    }
    if (lat < -90.0 || lat > 90.0 || lon < -180.0 || lon > 180.0) {
      return Status::Corruption("out-of-range coordinate at line " +
                                std::to_string(lineno));
    }
    if (!have_projector) {
      projector = geo::LocalProjector({lat, lon});
      have_projector = true;
    }
    const double t_abs = days * 86400.0;  // fractional days -> seconds
    if (!have_t0) {
      t0 = t_abs;
      have_t0 = true;
    }
    const geo::Vec2 xy = projector.Project({lat, lon});
    Status st = out.Append({xy.x, xy.y, t_abs - t0});
    if (!st.ok()) {
      return Status::Corruption("line " + std::to_string(lineno) + ": " +
                                st.message());
    }
  }
  return out;
}

Status WriteRepresentationCsv(const PiecewiseRepresentation& representation,
                              const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# x,y,first_index,last_index\n";
  char buf[160];
  for (const RepresentedSegment& s : representation) {
    std::snprintf(buf, sizeof(buf), "%.9g,%.9g,%zu,%zu\n", s.start.x,
                  s.start.y, s.first_index, s.last_index);
    out << buf;
  }
  if (!representation.empty()) {
    const RepresentedSegment& last = representation[representation.size() - 1];
    std::snprintf(buf, sizeof(buf), "%.9g,%.9g,%zu,%zu\n", last.end.x,
                  last.end.y, last.last_index, last.last_index);
    out << buf;
  }
  out.flush();
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

}  // namespace operb::traj
