#include "traj/io.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string_view>

namespace operb::traj {

namespace {

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size >= 0) {
    // Seekable source: size once, read once.
    std::string content(static_cast<std::size_t>(size), '\0');
    in.seekg(0, std::ios::beg);
    if (size > 0) in.read(content.data(), size);
    if (in.bad() || in.gcount() != size) {
      return Status::IOError("read failure on " + path);
    }
    return content;
  }
  // Non-seekable source (pipe, /dev/stdin, process substitution): chunked
  // reads until EOF.
  in.clear();
  std::string content;
  char chunk[65536];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    content.append(chunk, static_cast<std::size_t>(in.gcount()));
  }
  if (in.bad()) return Status::IOError("read failure on " + path);
  return content;
}

bool IsHorizontalSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

bool IsBlankOrComment(std::string_view line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!IsHorizontalSpace(c)) return false;
  }
  return true;
}

/// Zero-copy line iterator over a file's content. Splits on '\n' and
/// strips one trailing '\r' so DOS files parse identically.
class LineScanner {
 public:
  explicit LineScanner(std::string_view content)
      : pos_(content.data()), end_(content.data() + content.size()) {}

  bool Next(std::string_view* line) {
    if (pos_ == end_) return false;
    const char* nl =
        static_cast<const char*>(std::memchr(pos_, '\n', end_ - pos_));
    const char* stop = nl != nullptr ? nl : end_;
    std::size_t len = static_cast<std::size_t>(stop - pos_);
    if (len > 0 && pos_[len - 1] == '\r') --len;
    *line = std::string_view(pos_, len);
    pos_ = nl != nullptr ? nl + 1 : end_;
    ++lineno_;
    return true;
  }

  std::size_t lineno() const { return lineno_; }

 private:
  const char* pos_;
  const char* end_;
  std::size_t lineno_ = 0;
};

/// Locale-independent double parse at `*p` (after optional horizontal
/// whitespace and an optional '+', both of which sscanf's %lf accepted).
/// Advances `*p` past the number on success.
bool ParseDouble(const char** p, const char* end, double* out) {
  const char* c = *p;
  while (c < end && IsHorizontalSpace(*c)) ++c;
  if (c < end && *c == '+') {
    // Only consume the '+' when a number actually follows, so "+-1.5"
    // stays a parse error (as it was for strtod) instead of -1.5.
    if (c + 1 >= end || !((c[1] >= '0' && c[1] <= '9') || c[1] == '.')) {
      return false;
    }
    ++c;
  }
  const std::from_chars_result r = std::from_chars(c, end, *out);
  if (r.ec != std::errc()) return false;
  *p = r.ptr;
  return true;
}

bool ConsumeComma(const char** p, const char* end) {
  if (*p < end && **p == ',') {
    ++*p;
    return true;
  }
  return false;
}

/// Locale-free decimal uint64 parse (object ids), after optional
/// horizontal whitespace. Advances `*p` past the digits on success.
bool ParseObjectIdField(const char** p, const char* end, ObjectId* out) {
  const char* c = *p;
  while (c < end && IsHorizontalSpace(*c)) ++c;
  const std::from_chars_result r = std::from_chars(c, end, *out);
  if (r.ec != std::errc()) return false;
  *p = r.ptr;
  return true;
}

Status WriteContentToFile(const std::string& content,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

/// Upper bound on the number of data rows: one per newline, plus a final
/// unterminated line. Used to pre-reserve the trajectory so a multi-
/// megabyte file appends without reallocation.
std::size_t CountLines(std::string_view content) {
  return static_cast<std::size_t>(
             std::count(content.begin(), content.end(), '\n')) +
         (content.empty() || content.back() == '\n' ? 0 : 1);
}

}  // namespace

std::string WriteCsvString(const Trajectory& trajectory) {
  std::string out = "# x_meters,y_meters,t_seconds\n";
  out.reserve(out.size() + trajectory.size() * 40);
  char buf[128];
  for (const geo::Point& p : trajectory) {
    const int n =
        std::snprintf(buf, sizeof(buf), "%.9g,%.9g,%.9g\n", p.x, p.y, p.t);
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

Status WriteCsv(const Trajectory& trajectory, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  const std::string content = WriteCsvString(trajectory);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

Result<Trajectory> ParseCsv(const std::string& content) {
  Trajectory out;
  out.reserve(CountLines(content));
  LineScanner scanner{content};
  std::string_view line;
  while (scanner.Next(&line)) {
    if (IsBlankOrComment(line)) continue;
    const char* p = line.data();
    const char* end = line.data() + line.size();
    double x = 0.0, y = 0.0, t = 0.0;
    if (!(ParseDouble(&p, end, &x) && ConsumeComma(&p, end) &&
          ParseDouble(&p, end, &y) && ConsumeComma(&p, end) &&
          ParseDouble(&p, end, &t))) {
      return Status::Corruption("malformed CSV row at line " +
                                std::to_string(scanner.lineno()));
    }
    Status st = out.Append({x, y, t});
    if (!st.ok()) {
      return Status::Corruption("line " + std::to_string(scanner.lineno()) +
                                ": " + st.message());
    }
  }
  return out;
}

Result<Trajectory> ReadCsv(const std::string& path) {
  OPERB_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  return ParseCsv(content);
}

Result<std::vector<geo::Point>> ParseCsvPoints(const std::string& content) {
  std::vector<geo::Point> out;
  out.reserve(CountLines(content));
  LineScanner scanner{content};
  std::string_view line;
  while (scanner.Next(&line)) {
    if (IsBlankOrComment(line)) continue;
    const char* p = line.data();
    const char* end = line.data() + line.size();
    double x = 0.0, y = 0.0, t = 0.0;
    if (!(ParseDouble(&p, end, &x) && ConsumeComma(&p, end) &&
          ParseDouble(&p, end, &y) && ConsumeComma(&p, end) &&
          ParseDouble(&p, end, &t))) {
      return Status::Corruption("malformed CSV row at line " +
                                std::to_string(scanner.lineno()));
    }
    out.push_back({x, y, t});
  }
  return out;
}

Result<std::vector<geo::Point>> ReadCsvPoints(const std::string& path) {
  OPERB_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  return ParseCsvPoints(content);
}

Result<Trajectory> ParseGeoLifePlt(const std::string& content,
                                   const PltReadOptions& options) {
  LineScanner scanner{content};
  std::string_view line;
  // PLT files carry six header lines before the data rows.
  for (int i = 0; i < 6; ++i) {
    if (!scanner.Next(&line)) {
      return Status::Corruption("PLT content truncated in header");
    }
  }
  Trajectory out;
  const std::size_t total_lines = CountLines(content);
  out.reserve(total_lines > 6 ? total_lines - 6 : 0);
  bool have_projector = options.use_fixed_reference;
  geo::LocalProjector projector(options.reference);
  double t0 = 0.0;
  bool have_t0 = false;
  while (scanner.Next(&line)) {
    if (IsBlankOrComment(line)) continue;
    const char* p = line.data();
    const char* end = line.data() + line.size();
    double lat = 0.0, lon = 0.0, zero = 0.0, alt = 0.0, days = 0.0;
    // lat,lon,0,altitude_ft,days_since_1899[,date,time — ignored].
    if (!(ParseDouble(&p, end, &lat) && ConsumeComma(&p, end) &&
          ParseDouble(&p, end, &lon) && ConsumeComma(&p, end) &&
          ParseDouble(&p, end, &zero) && ConsumeComma(&p, end) &&
          ParseDouble(&p, end, &alt) && ConsumeComma(&p, end) &&
          ParseDouble(&p, end, &days))) {
      return Status::Corruption("malformed PLT row at line " +
                                std::to_string(scanner.lineno()));
    }
    if (lat < -90.0 || lat > 90.0 || lon < -180.0 || lon > 180.0) {
      return Status::Corruption("out-of-range coordinate at line " +
                                std::to_string(scanner.lineno()));
    }
    if (!have_projector) {
      projector = geo::LocalProjector({lat, lon});
      have_projector = true;
    }
    const double t_abs = days * 86400.0;  // fractional days -> seconds
    if (!have_t0) {
      t0 = t_abs;
      have_t0 = true;
    }
    const geo::Vec2 xy = projector.Project({lat, lon});
    Status st = out.Append({xy.x, xy.y, t_abs - t0});
    if (!st.ok()) {
      return Status::Corruption("line " + std::to_string(scanner.lineno()) +
                                ": " + st.message());
    }
  }
  return out;
}

Result<Trajectory> ReadGeoLifePlt(const std::string& path,
                                  const PltReadOptions& options) {
  OPERB_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  Result<Trajectory> r = ParseGeoLifePlt(content, options);
  if (!r.ok()) {
    // Re-attach the file context the content-level parser cannot know.
    return Status(r.status().code(), path + ": " + r.status().message());
  }
  return r;
}

Result<std::vector<ObjectUpdate>> ParseMultiObjectCsv(
    const std::string& content) {
  std::vector<ObjectUpdate> out;
  out.reserve(CountLines(content));
  LineScanner scanner{content};
  std::string_view line;
  while (scanner.Next(&line)) {
    if (IsBlankOrComment(line)) continue;
    const char* p = line.data();
    const char* end = line.data() + line.size();
    ObjectId id = 0;
    double t = 0.0, x = 0.0, y = 0.0;
    if (!(ParseObjectIdField(&p, end, &id) && ConsumeComma(&p, end) &&
          ParseDouble(&p, end, &t) && ConsumeComma(&p, end) &&
          ParseDouble(&p, end, &x) && ConsumeComma(&p, end) &&
          ParseDouble(&p, end, &y))) {
      return Status::Corruption("malformed multi-object CSV row at line " +
                                std::to_string(scanner.lineno()));
    }
    out.push_back({id, {x, y, t}});
  }
  return out;
}

Result<std::vector<ObjectUpdate>> ReadMultiObjectCsv(const std::string& path) {
  OPERB_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  Result<std::vector<ObjectUpdate>> r = ParseMultiObjectCsv(content);
  if (!r.ok()) {
    return Status(r.status().code(), path + ": " + r.status().message());
  }
  return r;
}

std::string WriteMultiObjectCsvString(std::span<const ObjectUpdate> updates) {
  std::string out = "# object_id,t_seconds,x_meters,y_meters\n";
  out.reserve(out.size() + updates.size() * 48);
  char buf[160];
  for (const ObjectUpdate& u : updates) {
    const int n = std::snprintf(buf, sizeof(buf), "%llu,%.9g,%.9g,%.9g\n",
                                static_cast<unsigned long long>(u.object_id),
                                u.point.t, u.point.x, u.point.y);
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

Status WriteMultiObjectCsv(std::span<const ObjectUpdate> updates,
                           const std::string& path) {
  return WriteContentToFile(WriteMultiObjectCsvString(updates), path);
}

std::string WriteTaggedSegmentsCsvString(
    std::span<const TaggedSegment> segments) {
  std::string out =
      "# object_id,first_index,last_index,start_is_patch,end_is_patch,"
      "start_x,start_y,end_x,end_y\n";
  out.reserve(out.size() + segments.size() * 80);
  char buf[240];
  for (const TaggedSegment& ts : segments) {
    const RepresentedSegment& s = ts.segment;
    const int n = std::snprintf(
        buf, sizeof(buf), "%llu,%zu,%zu,%d,%d,%.17g,%.17g,%.17g,%.17g\n",
        static_cast<unsigned long long>(ts.object_id), s.first_index,
        s.last_index, s.start_is_patch ? 1 : 0, s.end_is_patch ? 1 : 0,
        s.start.x, s.start.y, s.end.x, s.end.y);
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

Status WriteTaggedSegmentsCsv(std::span<const TaggedSegment> segments,
                              const std::string& path) {
  return WriteContentToFile(WriteTaggedSegmentsCsvString(segments), path);
}

Status WriteRepresentationCsv(const PiecewiseRepresentation& representation,
                              const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# x,y,first_index,last_index\n";
  char buf[160];
  for (const RepresentedSegment& s : representation) {
    std::snprintf(buf, sizeof(buf), "%.9g,%.9g,%zu,%zu\n", s.start.x,
                  s.start.y, s.first_index, s.last_index);
    out << buf;
  }
  if (!representation.empty()) {
    const RepresentedSegment& last = representation[representation.size() - 1];
    std::snprintf(buf, sizeof(buf), "%.9g,%.9g,%zu,%zu\n", last.end.x,
                  last.end.y, last.last_index, last.last_index);
    out << buf;
  }
  out.flush();
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

}  // namespace operb::traj
