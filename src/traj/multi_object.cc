#include "traj/multi_object.h"

#include <algorithm>
#include <cstddef>
#include <string>
#include <unordered_map>

namespace operb::traj {

Result<std::vector<ObjectTrajectory>> GroupUpdatesByObject(
    std::span<const ObjectUpdate> updates) {
  std::vector<ObjectTrajectory> out;
  std::unordered_map<ObjectId, std::size_t> index;
  index.reserve(64);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const ObjectUpdate& u = updates[i];
    auto [it, inserted] = index.try_emplace(u.object_id, out.size());
    if (inserted) {
      out.emplace_back();
      out.back().object_id = u.object_id;
    }
    Status st = out[it->second].trajectory.Append(u.point);
    if (!st.ok()) {
      return Status::InvalidArgument(
          "object " + std::to_string(u.object_id) + ", update " +
          std::to_string(i) + ": " + st.message());
    }
  }
  return out;
}

std::vector<ObjectUpdate> InterleaveRoundRobin(
    std::span<const ObjectTrajectory> objects) {
  std::size_t total = 0;
  std::size_t longest = 0;
  for (const ObjectTrajectory& o : objects) {
    total += o.trajectory.size();
    longest = std::max(longest, o.trajectory.size());
  }
  std::vector<ObjectUpdate> out;
  out.reserve(total);
  for (std::size_t round = 0; round < longest; ++round) {
    for (const ObjectTrajectory& o : objects) {
      if (round < o.trajectory.size()) {
        out.push_back({o.object_id, o.trajectory[round]});
      }
    }
  }
  return out;
}

}  // namespace operb::traj
