#ifndef OPERB_TRAJ_MULTI_OBJECT_H_
#define OPERB_TRAJ_MULTI_OBJECT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "geo/point.h"
#include "traj/piecewise.h"
#include "traj/trajectory.h"

namespace operb::traj {

/// Identifier of one moving object in a multi-object stream. Plain 64-bit
/// so any upstream key (vehicle id, device hash, ...) maps onto it.
using ObjectId = std::uint64_t;

/// One sample of a multi-object stream: "object `object_id` was at
/// `point.pos()` at time `point.t`". The interleaved sequence of updates
/// is what a fleet feed delivers and what engine::StreamEngine consumes.
struct ObjectUpdate {
  ObjectId object_id = 0;
  geo::Point point;
};

/// One output segment of a multi-object simplification, tagged with the
/// trajectory it belongs to.
struct TaggedSegment {
  ObjectId object_id = 0;
  RepresentedSegment segment;
};

/// A tagged segment annotated with the time interval it covers: the
/// timestamps of the original points at `segment.first_index` and
/// `segment.last_index`. This is the unit the trajectory store
/// (src/store) persists and serves — the time axis is what turns a
/// geometric segment into something a time-range or position-at-time
/// query can index. Patch endpoints (OPERB-A) keep the covered points'
/// timestamps: the interval describes the *represented* samples, not the
/// interpolated geometry.
struct TimedSegment {
  ObjectId object_id = 0;
  RepresentedSegment segment;
  /// Timestamp of the original point at `segment.first_index`, seconds.
  double t_start = 0.0;
  /// Timestamp of the original point at `segment.last_index`, seconds.
  double t_end = 0.0;
};

/// One object's reassembled trajectory.
struct ObjectTrajectory {
  ObjectId object_id = 0;
  Trajectory trajectory;
};

/// SplitMix64 finalizer over an object id. Ids are user-controlled (often
/// small dense integers); the mix spreads them over all 64 bits before
/// any modulus or table mask. This is THE hash every sharded consumer of
/// object ids agrees on — the StreamEngine's shard routing and the
/// trajectory store's segment-file partitioning both use it, so engine
/// shard s and store shard s see the same objects whenever the two sides
/// run the same shard count (engine output streams shard-locally into
/// the store).
inline std::uint64_t MixObjectId(ObjectId id) {
  std::uint64_t z = id + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// The canonical object -> shard assignment: MixObjectId(id) % num_shards.
/// Precondition: num_shards >= 1.
inline std::size_t ShardOfObject(ObjectId id, std::size_t num_shards) {
  return static_cast<std::size_t>(MixObjectId(id) %
                                  static_cast<std::uint64_t>(num_shards));
}

/// Groups an interleaved update stream into per-object trajectories in a
/// single pass. Objects appear in first-appearance order; each object's
/// points keep their stream order. Returns InvalidArgument when any
/// object's timestamps are not strictly increasing.
Result<std::vector<ObjectTrajectory>> GroupUpdatesByObject(
    std::span<const ObjectUpdate> updates);

/// Inverse of grouping for synthetic workloads: interleaves the objects'
/// points round-robin (object 0's first point, object 1's first point,
/// ..., object 0's second point, ...), which is the worst case for
/// per-object state locality and the standard shape of a fleet feed.
std::vector<ObjectUpdate> InterleaveRoundRobin(
    std::span<const ObjectTrajectory> objects);

}  // namespace operb::traj

#endif  // OPERB_TRAJ_MULTI_OBJECT_H_
