#ifndef OPERB_TRAJ_IO_H_
#define OPERB_TRAJ_IO_H_

#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geo/projection.h"
#include "traj/multi_object.h"
#include "traj/piecewise.h"
#include "traj/trajectory.h"

namespace operb::traj {

/// Plain CSV format used by this library: one `x,y,t` row per point, in
/// projected meters, `#`-prefixed comment lines allowed. The natural
/// interchange format for already-projected data and for test fixtures.
///
/// Parsing runs on std::from_chars with manual line scanning: no stream
/// or scanf machinery, no per-row allocation, and — unlike `%lf` — no
/// dependence on the process locale's decimal separator. The trajectory
/// is pre-reserved from the file's line count, so a multi-megabyte file
/// ingests in one allocation.
Status WriteCsv(const Trajectory& trajectory, const std::string& path);
Result<Trajectory> ReadCsv(const std::string& path);

/// In-memory counterpart of WriteCsv (single source of truth for the row
/// format; WriteCsv serializes through this). Round-trips through
/// ParseCsv with %.9g precision.
std::string WriteCsvString(const Trajectory& trajectory);

/// GeoLife PLT format reader.
///
/// GeoLife (the one public dataset in the paper's Table 1) ships one
/// `.plt` file per trajectory: six header lines, then
/// `lat,lon,0,altitude_ft,days_since_1899,date,time` rows. Coordinates
/// are projected to local meters around the first point (or around
/// `reference` if provided), timestamps become seconds since the first
/// sample. Invalid rows yield Corruption.
struct PltReadOptions {
  /// Optional fixed projection reference; by default the first point.
  bool use_fixed_reference = false;
  geo::LatLon reference;
};
Result<Trajectory> ReadGeoLifePlt(const std::string& path,
                                  const PltReadOptions& options = {});

/// Parses in-memory PLT content (the file-reading half of ReadGeoLifePlt
/// split off so tests, benchmarks and network receivers can bypass the
/// filesystem). Same locale-proof from_chars scanner as ParseCsv.
Result<Trajectory> ParseGeoLifePlt(const std::string& content,
                                   const PltReadOptions& options = {});

/// Serializes a piecewise representation: one `x,y,first,last` row per
/// segment start, plus a final row for the last endpoint. Suitable for
/// downstream plotting.
Status WriteRepresentationCsv(const PiecewiseRepresentation& representation,
                              const std::string& path);

/// Parses the in-memory content of a CSV trajectory (exposed separately so
/// tests and network receivers can bypass the filesystem).
Result<Trajectory> ParseCsv(const std::string& content);

/// Raw-sample variants of ReadCsv/ParseCsv: same row format and scanner,
/// but rows parse into plain points in file order with *no* trajectory
/// validation — duplicate and out-of-order timestamps pass through. The
/// ingest form for cleaner-fronted pipelines (api::Pipeline with a
/// Clean() stage), where rejecting a dirty export at parse time would
/// make the repair stage unreachable.
Result<std::vector<geo::Point>> ParseCsvPoints(const std::string& content);
Result<std::vector<geo::Point>> ReadCsvPoints(const std::string& path);

/// Multi-object CSV: one `id,t,x,y` row per update, rows from different
/// objects freely interleaved (the on-disk form of a fleet feed),
/// `#`-prefixed comment lines allowed. `id` is a decimal 64-bit object
/// id; `t` seconds; `x`,`y` projected meters. Same locale-proof
/// from_chars scanner as ParseCsv, updates returned in file order. Feed
/// the result to engine::StreamEngine directly, or group it with
/// GroupUpdatesByObject (which also validates per-object timestamps).
Result<std::vector<ObjectUpdate>> ParseMultiObjectCsv(
    const std::string& content);
Result<std::vector<ObjectUpdate>> ReadMultiObjectCsv(const std::string& path);

/// In-memory/file writers for the same row format. Round-trips through
/// ParseMultiObjectCsv with %.9g precision.
std::string WriteMultiObjectCsvString(std::span<const ObjectUpdate> updates);
Status WriteMultiObjectCsv(std::span<const ObjectUpdate> updates,
                           const std::string& path);

/// Serializes id-tagged simplified segments, one
/// `id,first_index,last_index,start_is_patch,end_is_patch,x0,y0,x1,y1`
/// row per segment — the multi-object counterpart of
/// WriteRepresentationCsv, emitted by operb_cli --group-by-id.
std::string WriteTaggedSegmentsCsvString(
    std::span<const TaggedSegment> segments);
Status WriteTaggedSegmentsCsv(std::span<const TaggedSegment> segments,
                              const std::string& path);

}  // namespace operb::traj

#endif  // OPERB_TRAJ_IO_H_
