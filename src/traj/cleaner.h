#ifndef OPERB_TRAJ_CLEANER_H_
#define OPERB_TRAJ_CLEANER_H_

#include <cstddef>
#include <optional>

#include "geo/point.h"
#include "traj/trajectory.h"

namespace operb::traj {

/// Statistics reported by StreamCleaner about what it dropped/reordered.
struct CleanerStats {
  std::size_t accepted = 0;
  std::size_t duplicates_dropped = 0;
  std::size_t out_of_order_dropped = 0;
  std::size_t outliers_dropped = 0;
};

/// Options for StreamCleaner.
struct CleanerOptions {
  /// Points whose timestamp equals the previous accepted one (within
  /// `duplicate_time_epsilon`) and whose position is within
  /// `duplicate_distance_epsilon` meters are duplicates.
  double duplicate_time_epsilon = 1e-9;
  double duplicate_distance_epsilon = 1e-6;
  /// Maximum plausible speed in m/s; a point implying a faster move from
  /// the previous accepted point is dropped as a GPS outlier. <= 0
  /// disables the check.
  double max_speed_mps = 0.0;
};

/// Repairs a raw sensor stream into a valid Trajectory, online.
///
/// The paper's introduction reports that online transmission of raw
/// trajectories "seriously aggravates ... out-of-order and duplicate data
/// points"; compressing on-device presumes a sanitized stream. The cleaner
/// is a one-pass filter matching that deployment: duplicates and
/// out-of-order arrivals are dropped, and (optionally) physically
/// impossible jumps are rejected by a speed gate.
class StreamCleaner {
 public:
  explicit StreamCleaner(CleanerOptions options = {}) : options_(options) {}

  /// Feeds one raw sample; returns the sample if it should be kept.
  std::optional<geo::Point> Push(const geo::Point& p);

  const CleanerStats& stats() const { return stats_; }

  /// Convenience: cleans a whole point vector into a valid Trajectory.
  Trajectory CleanAll(const std::vector<geo::Point>& raw);

 private:
  CleanerOptions options_;
  CleanerStats stats_;
  std::optional<geo::Point> last_;
};

}  // namespace operb::traj

#endif  // OPERB_TRAJ_CLEANER_H_
