#include "traj/piecewise.h"

#include <cmath>
#include <cstdio>

#include "common/serial.h"

namespace operb::traj {

namespace {

bool NearlyEqual(geo::Vec2 a, geo::Vec2 b) {
  // Endpoints are copied, not recomputed, so exact equality normally
  // holds; the epsilon only forgives benign float noise from patch-point
  // construction.
  return std::fabs(a.x - b.x) <= 1e-6 && std::fabs(a.y - b.y) <= 1e-6;
}

}  // namespace

void SerializeSegment(const RepresentedSegment& s,
                      std::vector<std::uint8_t>* out) {
  serial::PutF64(s.start.x, out);
  serial::PutF64(s.start.y, out);
  serial::PutF64(s.end.x, out);
  serial::PutF64(s.end.y, out);
  serial::PutU64(s.first_index, out);
  serial::PutU64(s.last_index, out);
  serial::PutU8(s.start_is_patch ? 1 : 0, out);
  serial::PutU8(s.end_is_patch ? 1 : 0, out);
}

Status DeserializeSegment(std::span<const std::uint8_t> in, std::size_t* pos,
                          RepresentedSegment* s) {
  std::uint64_t first = 0;
  std::uint64_t last = 0;
  std::uint8_t start_patch = 0;
  std::uint8_t end_patch = 0;
  if (!serial::GetF64(in, pos, &s->start.x) ||
      !serial::GetF64(in, pos, &s->start.y) ||
      !serial::GetF64(in, pos, &s->end.x) ||
      !serial::GetF64(in, pos, &s->end.y) ||
      !serial::GetU64(in, pos, &first) || !serial::GetU64(in, pos, &last) ||
      !serial::GetU8(in, pos, &start_patch) ||
      !serial::GetU8(in, pos, &end_patch)) {
    return Status::Corruption("truncated segment encoding");
  }
  if (start_patch > 1 || end_patch > 1) {
    return Status::Corruption("segment patch flag out of range");
  }
  s->first_index = static_cast<std::size_t>(first);
  s->last_index = static_cast<std::size_t>(last);
  s->start_is_patch = start_patch != 0;
  s->end_is_patch = end_patch != 0;
  return Status::OK();
}

std::string RepresentedSegment::ToString() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "[(%.3f,%.3f)->(%.3f,%.3f) covers %zu..%zu%s%s]", start.x,
                start.y, end.x, end.y, first_index, last_index,
                start_is_patch ? " start*" : "", end_is_patch ? " end*" : "");
  return buf;
}

Status PiecewiseRepresentation::ValidateAgainst(
    const Trajectory& original) const {
  if (original.size() < 2) {
    if (!segments_.empty()) {
      return Status::InvalidArgument(
          "representation of a <2 point trajectory must be empty");
    }
    return Status::OK();
  }
  if (segments_.empty()) {
    return Status::InvalidArgument("empty representation");
  }
  if (segments_.front().first_index != 0) {
    return Status::InvalidArgument("first segment does not start at index 0");
  }
  if (segments_.back().last_index != original.size() - 1) {
    return Status::InvalidArgument("last segment does not end at last index");
  }
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const RepresentedSegment& s = segments_[i];
    if (s.first_index > s.last_index || s.last_index >= original.size()) {
      return Status::InvalidArgument("segment " + std::to_string(i) +
                                     " has an invalid index range");
    }
    if (!s.start_is_patch &&
        !NearlyEqual(s.start, original[s.first_index].pos())) {
      return Status::InvalidArgument(
          "segment " + std::to_string(i) +
          " start does not match its first represented point");
    }
    if (!s.end_is_patch && !NearlyEqual(s.end, original[s.last_index].pos())) {
      return Status::InvalidArgument(
          "segment " + std::to_string(i) +
          " end does not match its last represented point");
    }
    if (i > 0) {
      const RepresentedSegment& prev = segments_[i - 1];
      // Ordinary neighbours share their boundary point; a patched
      // junction (both sides flagged) instead skips exactly the
      // eliminated anomalous segment's boundary, leaving a one-index gap.
      const bool patched_junction = prev.end_is_patch && s.start_is_patch;
      const bool chains =
          s.first_index == prev.last_index ||
          (patched_junction && s.first_index == prev.last_index + 1);
      if (!chains) {
        return Status::InvalidArgument("index ranges of segments " +
                                       std::to_string(i - 1) + " and " +
                                       std::to_string(i) + " do not chain");
      }
      if (!NearlyEqual(s.start, prev.end)) {
        return Status::InvalidArgument("segments " + std::to_string(i - 1) +
                                       " and " + std::to_string(i) +
                                       " are not continuous");
      }
    }
  }
  return Status::OK();
}

std::string PiecewiseRepresentation::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "PiecewiseRepresentation{%zu segments}",
                segments_.size());
  return buf;
}

}  // namespace operb::traj
