#ifndef OPERB_COMMON_RESULT_H_
#define OPERB_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace operb {

/// Either a value of type `T` or a non-OK `Status`.
///
/// The idiomatic call pattern:
///
///   Result<Trajectory> r = ReadCsvTrajectory(path);
///   if (!r.ok()) return r.status();
///   Trajectory t = std::move(r).value();
///
/// or, inside a Status/Result-returning function:
///
///   OPERB_ASSIGN_OR_RETURN(Trajectory t, ReadCsvTrajectory(path));
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a programming error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The failure status; OK() if this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace operb

#define OPERB_RESULT_CONCAT_INNER_(a, b) a##b
#define OPERB_RESULT_CONCAT_(a, b) OPERB_RESULT_CONCAT_INNER_(a, b)

/// Evaluates `rexpr` (a Result<T>); on failure returns its status from the
/// enclosing function, on success binds the value to `lhs`.
#define OPERB_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  auto OPERB_RESULT_CONCAT_(_operb_result_, __LINE__) = (rexpr);            \
  if (!OPERB_RESULT_CONCAT_(_operb_result_, __LINE__).ok())                 \
    return OPERB_RESULT_CONCAT_(_operb_result_, __LINE__).status();        \
  lhs = std::move(OPERB_RESULT_CONCAT_(_operb_result_, __LINE__)).value()

#endif  // OPERB_COMMON_RESULT_H_
