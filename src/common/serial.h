#ifndef OPERB_COMMON_SERIAL_H_
#define OPERB_COMMON_SERIAL_H_

/// \file
/// Byte-stable little-endian field encoding plus the FNV-1a checksum —
/// the shared vocabulary of every durable byte format in this repo (store
/// block footers, MANIFEST, simplifier state blobs, engine checkpoints).
///
/// The discipline: fixed-size fields appended one at a time, doubles as
/// their IEEE-754 bit patterns, every blob prefixed with a magic + version
/// byte and closed by a trailing FNV-1a64 over everything before it.
/// Readers advance a caller-owned cursor and report truncation instead of
/// reading past the end, so a corrupt length upstream can never walk a
/// parser out of its buffer.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace operb::serial {

inline void PutU8(std::uint8_t v, std::vector<std::uint8_t>* out) {
  out->push_back(v);
}

inline void PutU32(std::uint32_t v, std::vector<std::uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void PutU64(std::uint64_t v, std::vector<std::uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void PutF64(double v, std::vector<std::uint8_t>* out) {
  PutU64(std::bit_cast<std::uint64_t>(v), out);
}

/// Cursor-advancing readers: each returns false (leaving `*v` untouched
/// and `*pos` unspecified-but-unmoved) when fewer than the field's bytes
/// remain.
inline bool GetU8(std::span<const std::uint8_t> in, std::size_t* pos,
                  std::uint8_t* v) {
  if (in.size() - *pos < 1 || *pos > in.size()) return false;
  *v = in[(*pos)++];
  return true;
}

inline bool GetU32(std::span<const std::uint8_t> in, std::size_t* pos,
                   std::uint32_t* v) {
  if (*pos > in.size() || in.size() - *pos < 4) return false;
  std::uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<std::uint32_t>(in[*pos + i]) << (8 * i);
  }
  *pos += 4;
  *v = r;
  return true;
}

inline bool GetU64(std::span<const std::uint8_t> in, std::size_t* pos,
                   std::uint64_t* v) {
  if (*pos > in.size() || in.size() - *pos < 8) return false;
  std::uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<std::uint64_t>(in[*pos + i]) << (8 * i);
  }
  *pos += 8;
  *v = r;
  return true;
}

inline bool GetF64(std::span<const std::uint8_t> in, std::size_t* pos,
                   double* v) {
  std::uint64_t bits = 0;
  if (!GetU64(in, pos, &bits)) return false;
  *v = std::bit_cast<double>(bits);
  return true;
}

inline constexpr std::uint64_t kFnv1a64OffsetBasis = 0xCBF2'9CE4'8422'2325ULL;

/// 64-bit FNV-1a over `data`, chainable through `seed` (pass a previous
/// call's result to hash discontiguous pieces as one stream).
inline std::uint64_t Fnv1a64(std::span<const std::uint8_t> data,
                             std::uint64_t seed = kFnv1a64OffsetBasis) {
  constexpr std::uint64_t kPrime = 0x0000'0100'0000'01B3ULL;
  std::uint64_t h = seed;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= kPrime;
  }
  return h;
}

}  // namespace operb::serial

#endif  // OPERB_COMMON_SERIAL_H_
