#ifndef OPERB_COMMON_CHECK_H_
#define OPERB_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Invariant checks that stay enabled in release builds.
///
/// These guard internal invariants whose violation would make further
/// execution meaningless (not user input errors, which are reported via
/// Status). Modeled after the CHECK macros used throughout the
/// Google/Arrow/RocksDB codebases.
#define OPERB_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "OPERB_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define OPERB_CHECK_MSG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "OPERB_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Debug-only check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define OPERB_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define OPERB_DCHECK(cond) OPERB_CHECK(cond)
#endif

#endif  // OPERB_COMMON_CHECK_H_
