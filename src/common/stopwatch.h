#ifndef OPERB_COMMON_STOPWATCH_H_
#define OPERB_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace operb {

/// Monotonic wall-clock stopwatch used by the evaluation harness.
///
/// Deliberately trivial: start on construction (or Restart()), read
/// elapsed time in the unit the caller needs. Benchmarks that need
/// statistical rigor use google-benchmark instead; this type backs the
/// paper-figure harnesses, which time whole dataset passes (seconds of
/// work, where a plain steady_clock delta is accurate enough).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace operb

#endif  // OPERB_COMMON_STOPWATCH_H_
