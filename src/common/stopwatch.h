#ifndef OPERB_COMMON_STOPWATCH_H_
#define OPERB_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace operb {

/// Monotonic now() in nanoseconds (steady_clock, arbitrary epoch).
///
/// The single time source for the obs instrumentation layer: latency
/// histograms and trace spans subtract two NowNanos() reads, so only
/// monotonicity matters — never use system_clock here (it steps under
/// NTP adjustment and would record negative or wildly wrong latencies).
inline std::int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonic wall-clock stopwatch used by the evaluation harness.
///
/// Deliberately trivial: start on construction (or Restart()), read
/// elapsed time in the unit the caller needs. Benchmarks that need
/// statistical rigor use google-benchmark instead; this type backs the
/// paper-figure harnesses, which time whole dataset passes (seconds of
/// work, where a plain steady_clock delta is accurate enough).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace operb

#endif  // OPERB_COMMON_STOPWATCH_H_
