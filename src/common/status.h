#ifndef OPERB_COMMON_STATUS_H_
#define OPERB_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace operb {

/// Error category for a failed operation. Mirrors the small set of
/// conditions this library can actually produce; IO-heavy modules
/// (trajectory readers, codecs) return kIOError / kCorruption, while
/// algorithm entry points validate their inputs with kInvalidArgument.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kCorruption = 3,
  kNotFound = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// The success path carries no allocation: an OK status is two words.
/// Failure statuses carry a code plus a message. The API follows the
/// RocksDB/Arrow convention: factory functions per code, `ok()` for
/// checking, and `ToString()` for logging.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace operb

/// Propagates a non-OK Status to the caller. Usable only in functions
/// returning Status.
#define OPERB_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::operb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

#endif  // OPERB_COMMON_STATUS_H_
